package train

// Property coverage for the memory budget (run under -race in CI): across
// randomized schemas, bucket orders, lookahead depths, budgets, and shard
// codecs, the store's resident bytes never exceed MaxResidentBytes plus the
// single in-flight shard allowance, and every acquired shard is eventually
// released. The invariant is observed two ways at once: a polling goroutine
// hammering ResidentBytes while epochs run (so transients — prefetch
// projections, write-back snapshots — cannot hide between samples), and
// the per-epoch ResidentHighWater the executor records.

import (
	"fmt"
	"runtime"
	"testing"

	"pbg/internal/datagen"
	"pbg/internal/partition"
	"pbg/internal/rng"
	"pbg/internal/storage"
	"pbg/internal/storage/storetest"
)

func TestPipelineBudgetInvariantProperty(t *testing.T) {
	orders := []string{
		partition.OrderInsideOut, partition.OrderSequential,
		partition.OrderRandom, partition.OrderChained,
	}
	cases := 6
	if testing.Short() {
		cases = 3
	}
	r := rng.New(99)
	for i := 0; i < cases; i++ {
		parts := []int{2, 4, 8}[r.Intn(3)]
		order := orders[r.Intn(len(orders))]
		codec := storage.Codecs()[r.Intn(len(storage.Codecs()))]
		la := 1 + r.Intn(3)
		maxLa := la + r.Intn(3)
		const nodes, dim = 240, 8
		// A bucket's working set is two shards; budgets below that would
		// legitimately run over (referenced shards cannot be evicted), so
		// randomize from the working set upward — priced through the case's
		// codec, the same currency admission charges. The last case is
		// unbounded.
		shardMult := int64(2 + r.Intn(3))
		if i == cases-1 {
			shardMult = 0
		}
		name := fmt.Sprintf("parts=%d/order=%s/codec=%s/la=%d-%d/budget=%dx", parts, order, codec, la, maxLa, shardMult)
		t.Run(name, func(t *testing.T) {
			g, err := datagen.Social(datagen.SocialConfig{
				Nodes: nodes, AvgOutDegree: 4, NumPartitions: parts, Seed: uint64(31 + i),
			})
			if err != nil {
				t.Fatal(err)
			}
			perShard := storage.ProjectedShardBytesCodec(g.Schema, dim, 0, 0, codec)
			budget := shardMult * perShard
			ds, err := storage.NewDiskStore(t.TempDir(), g.Schema, dim, 7, 1)
			if err != nil {
				t.Fatal(err)
			}
			st := storetest.NewPassthrough(ds)
			tr, err := New(g, st, Config{
				Dim: dim, Epochs: 2, Seed: uint64(5 + i), Workers: 2, HogwildOff: true,
				BucketOrder: order, Lookahead: la, MaxLookahead: maxLa,
				MemBudgetBytes: budget, Codec: codec.String(),
			})
			if err != nil {
				t.Fatal(err)
			}
			done := make(chan struct{})
			peakCh := make(chan int64, 1)
			go func() {
				var peak int64
				for {
					select {
					case <-done:
						peakCh <- peak
						return
					default:
					}
					if rb := ds.ResidentBytes(); rb > peak {
						peak = rb
					}
					runtime.Gosched()
				}
			}()
			stats, err := tr.Train(nil)
			close(done)
			peak := <-peakCh
			if err != nil {
				t.Fatal(err)
			}
			if err := ds.Drain(); err != nil {
				t.Fatal(err)
			}
			if budget > 0 {
				if peak > budget+perShard {
					t.Fatalf("sampled resident %d exceeds budget %d + one-shard allowance %d", peak, budget, perShard)
				}
				for _, s := range stats {
					if s.ResidentHighWater > budget+perShard {
						t.Fatalf("epoch %d high-water %d exceeds budget %d + allowance %d",
							s.Epoch, s.ResidentHighWater, budget, perShard)
					}
				}
			}
			// No leaks: every acquired shard was released, nothing pending.
			if err := st.LeakCheck(); err != nil {
				t.Fatal(err)
			}
			if n := st.Outstanding(); n != 0 {
				t.Fatalf("%d references outstanding after training", n)
			}
			if err := ds.Close(); err != nil {
				t.Fatal(err)
			}
		})
	}
}
