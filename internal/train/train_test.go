package train

import (
	"testing"

	"pbg/internal/datagen"
	"pbg/internal/graph"
	"pbg/internal/storage"
)

func smallSocial(t *testing.T, parts int) *graph.Graph {
	t.Helper()
	g, err := datagen.Social(datagen.SocialConfig{
		Nodes: 400, AvgOutDegree: 8, NumPartitions: parts, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func newTrainer(t *testing.T, g *graph.Graph, cfg Config) *Trainer {
	t.Helper()
	if cfg.Dim == 0 {
		cfg.Dim = 16
	}
	if cfg.Epochs == 0 {
		cfg.Epochs = 3
	}
	store := storage.NewMemStore(g.Schema, cfg.Dim, 7, 1)
	tr, err := New(g, store, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestTrainLossDecreases(t *testing.T) {
	g := smallSocial(t, 1)
	tr := newTrainer(t, g, Config{Epochs: 5, Seed: 3})
	stats, err := tr.Train(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != 5 {
		t.Fatalf("got %d epochs", len(stats))
	}
	first := stats[0].Loss / float64(stats[0].Edges)
	last := stats[len(stats)-1].Loss / float64(stats[len(stats)-1].Edges)
	if last >= first*0.9 {
		t.Fatalf("per-edge loss did not decrease: %v → %v", first, last)
	}
	for _, s := range stats {
		if s.Edges != g.Edges.Len() {
			t.Fatalf("epoch %d trained %d edges, want %d", s.Epoch, s.Edges, g.Edges.Len())
		}
	}
}

func TestTrainPartitionedMatchesUnpartitionedShape(t *testing.T) {
	// Partitioned training must also drive the loss down; quality parity is
	// asserted end-to-end in the eval integration tests.
	g := smallSocial(t, 4)
	tr := newTrainer(t, g, Config{Epochs: 4, Seed: 3})
	stats, err := tr.Train(nil)
	if err != nil {
		t.Fatal(err)
	}
	first := stats[0].Loss / float64(stats[0].Edges)
	last := stats[len(stats)-1].Loss / float64(stats[len(stats)-1].Edges)
	if last >= first*0.9 {
		t.Fatalf("partitioned loss did not decrease: %v → %v", first, last)
	}
	// 16 buckets must all have been visited.
	if stats[0].BucketsActive == 0 {
		t.Fatal("no buckets trained")
	}
	if stats[0].PartitionIO == 0 {
		t.Fatal("partitioned run reported zero partition loads")
	}
}

func TestTrainWithDiskStoreSwapping(t *testing.T) {
	// 8 partitions: the pipelined executor may transiently hold the current
	// bucket's two partitions plus prefetched and writing-back shards, so a
	// finer grid is needed to observe peak resident < full model. Without a
	// budget the unbudgeted store's residency is timing-dependent — async
	// write-backs keep evicted shards (and their snapshot copies) counted
	// until the disk write lands, so on a slow run all 8 shards plus
	// several snapshots can coexist and exceed the full model transiently.
	// A budget makes the bound deterministic: admission enforces it.
	g := smallSocial(t, 8)
	dir := t.TempDir()
	store, err := storage.NewDiskStore(dir, g.Schema, 16, 7, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Close drains the background write-backs; without it their temp files
	// race the TempDir cleanup.
	defer store.Close()
	perShard := storage.ProjectedShardBytes(g.Schema, 16, 0, 0)
	budget := 5 * perShard
	tr, err := New(g, store, Config{Dim: 16, Epochs: 2, Seed: 3, MemBudgetBytes: budget})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := tr.Train(nil)
	if err != nil {
		t.Fatal(err)
	}
	last := stats[len(stats)-1].Loss / float64(stats[len(stats)-1].Edges)
	first := stats[0].Loss / float64(stats[0].Edges)
	if last >= first {
		t.Fatalf("disk-backed loss did not decrease: %v → %v", first, last)
	}
	// Swapping must keep the peak resident footprint well under the full
	// model: the budget plus the controller's one-in-flight-shard
	// allowance is still three shards below the 8-shard full model.
	full := int64(400 * (16 + 1) * 4)
	peak := stats[len(stats)-1].PeakResident
	if peak > budget+perShard {
		t.Fatalf("peak resident %d exceeded budget %d + one-shard allowance", peak, budget)
	}
	if peak >= full {
		t.Fatalf("peak resident %d not smaller than full model %d", peak, full)
	}
}

// TestTrainPipelinedDiskStoreRace exercises the pipelined executor end to
// end on a multi-partition DiskStore with several workers in striped-lock
// mode; run under -race it checks the prefetch/write-back machinery never
// lets a background I/O goroutine touch buffers a trainer is mutating.
func TestTrainPipelinedDiskStoreRace(t *testing.T) {
	g := smallSocial(t, 4)
	dir := t.TempDir()
	store, err := storage.NewDiskStore(dir, g.Schema, 16, 7, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	tr, err := New(g, store, Config{
		Dim: 16, Epochs: 3, Seed: 3, Workers: 4, HogwildOff: true, Lookahead: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := tr.Train(nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}
	first := stats[0].Loss / float64(stats[0].Edges)
	last := stats[len(stats)-1].Loss / float64(stats[len(stats)-1].Edges)
	if last >= first {
		t.Fatalf("pipelined loss did not decrease: %v → %v", first, last)
	}
	for _, s := range stats {
		if s.Edges != g.Edges.Len() {
			t.Fatalf("epoch %d trained %d edges, want %d", s.Epoch, s.Edges, g.Edges.Len())
		}
	}
}

// TestPipelineMatchesSerialLoss pins the pipelined executor to the serial
// baseline: same seed, same store type, same per-epoch loss and edge count
// (shard lifetimes change, the math must not).
func TestPipelineMatchesSerialLoss(t *testing.T) {
	run := func(off bool) []EpochStats {
		g := smallSocial(t, 4)
		dir := t.TempDir()
		store, err := storage.NewDiskStore(dir, g.Schema, 16, 7, 1)
		if err != nil {
			t.Fatal(err)
		}
		defer store.Close()
		tr, err := New(g, store, Config{Dim: 16, Epochs: 2, Seed: 3, PipelineOff: off})
		if err != nil {
			t.Fatal(err)
		}
		stats, err := tr.Train(nil)
		if err != nil {
			t.Fatal(err)
		}
		return stats
	}
	pipe := run(false)
	serial := run(true)
	for e := range pipe {
		if pipe[e].Loss != serial[e].Loss || pipe[e].Edges != serial[e].Edges {
			t.Fatalf("epoch %d diverged: pipeline (%v, %d) vs serial (%v, %d)",
				e, pipe[e].Loss, pipe[e].Edges, serial[e].Loss, serial[e].Edges)
		}
	}
}

// TestPipelineMatchesSerialLossTightBudget is the budget regression pin: a
// budget so tight only one bucket's shards fit forces the adaptive
// controller to lookahead 0 and the store into constant forced eviction —
// and the losses must still be bit-identical to the serial baseline
// (admission, shedding, and eviction may change shard lifetimes, never the
// math).
func TestPipelineMatchesSerialLossTightBudget(t *testing.T) {
	// Price one bucket's working set on a probe trainer.
	probeG := smallSocial(t, 4)
	probe, err := New(probeG, storage.NewMemStore(probeG.Schema, 16, 7, 1), Config{Dim: 16})
	if err != nil {
		t.Fatal(err)
	}
	budget := probe.windowBytes(0) + probe.maxShardBytes()

	run := func(off bool, budget int64) []EpochStats {
		g := smallSocial(t, 4)
		store, err := storage.NewDiskStore(t.TempDir(), g.Schema, 16, 7, 1)
		if err != nil {
			t.Fatal(err)
		}
		defer store.Close()
		tr, err := New(g, store, Config{
			Dim: 16, Epochs: 2, Seed: 3, PipelineOff: off,
			Lookahead: 2, MaxLookahead: 3, MemBudgetBytes: budget,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !off && tr.Lookahead() != 0 {
			t.Fatalf("one-bucket budget must force lookahead 0, got %d", tr.Lookahead())
		}
		stats, err := tr.Train(nil)
		if err != nil {
			t.Fatal(err)
		}
		return stats
	}
	pipe := run(false, budget)
	serial := run(true, 0)
	for e := range pipe {
		if pipe[e].Loss != serial[e].Loss || pipe[e].Edges != serial[e].Edges {
			t.Fatalf("epoch %d diverged under tight budget: pipeline (%v, %d) vs serial (%v, %d)",
				e, pipe[e].Loss, pipe[e].Edges, serial[e].Loss, serial[e].Edges)
		}
	}
	for _, s := range pipe {
		if s.ResidentHighWater > budget+probe.maxShardBytes() {
			t.Fatalf("epoch %d high-water %d exceeds tight budget %d + allowance", s.Epoch, s.ResidentHighWater, budget)
		}
	}
}

func TestTrainMultiWorkerHogwild(t *testing.T) {
	if raceDetectorEnabled {
		t.Skip("HOGWILD races on embedding rows by design; see TestTrainPipelinedDiskStoreRace for the race-clean striped mode")
	}
	g := smallSocial(t, 1)
	tr := newTrainer(t, g, Config{Epochs: 3, Workers: 4, Seed: 5})
	stats, err := tr.Train(nil)
	if err != nil {
		t.Fatal(err)
	}
	first := stats[0].Loss / float64(stats[0].Edges)
	last := stats[len(stats)-1].Loss / float64(stats[len(stats)-1].Edges)
	if last >= first*0.9 {
		t.Fatalf("hogwild loss did not decrease: %v → %v", first, last)
	}
}

func TestTrainStripedLockMode(t *testing.T) {
	g := smallSocial(t, 1)
	tr := newTrainer(t, g, Config{Epochs: 2, Workers: 4, HogwildOff: true, Seed: 5})
	if _, err := tr.Train(nil); err != nil {
		t.Fatal(err)
	}
}

func TestTrainMultiRelationOperators(t *testing.T) {
	// A KG where relations use the translation operator.
	g, err := datagen.Knowledge(datagen.KGConfig{Entities: 300, Relations: 6, Edges: 3000, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	tr := newTrainer(t, g, Config{Epochs: 4, Seed: 7, Loss: "softmax", Comparator: "dot"})
	stats, err := tr.Train(nil)
	if err != nil {
		t.Fatal(err)
	}
	first := stats[0].Loss / float64(stats[0].Edges)
	last := stats[len(stats)-1].Loss / float64(stats[len(stats)-1].Edges)
	if last >= first {
		t.Fatalf("KG loss did not decrease: %v → %v", first, last)
	}
	// Relation parameters must have moved off their identity init.
	moved := false
	for r := range g.Schema.Relations {
		for _, v := range tr.RelParams(r) {
			if v != 0 {
				moved = true
			}
		}
	}
	if !moved {
		t.Fatal("relation parameters never updated")
	}
}

func TestTrainReciprocal(t *testing.T) {
	g, err := datagen.Knowledge(datagen.KGConfig{Entities: 200, Relations: 4, Edges: 1500, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	tr := newTrainer(t, g, Config{Epochs: 2, Seed: 7, Reciprocal: true, Loss: "softmax"})
	if _, err := tr.Train(nil); err != nil {
		t.Fatal(err)
	}
	// Reciprocal blocks are double sized.
	sc := tr.Scorer(0)
	if len(tr.RelParams(0)) != sc.RelParamCount() {
		t.Fatal("param block size mismatch")
	}
}

func TestTrainBipartiteTypeConstraints(t *testing.T) {
	g, err := datagen.Bipartite(datagen.BipartiteConfig{
		Users: 300, Items: 20, Edges: 2000, UserPartitions: 2, Seed: 19,
	})
	if err != nil {
		t.Fatal(err)
	}
	tr := newTrainer(t, g, Config{Epochs: 3, Seed: 7})
	stats, err := tr.Train(nil)
	if err != nil {
		t.Fatal(err)
	}
	first := stats[0].Loss / float64(stats[0].Edges)
	last := stats[len(stats)-1].Loss / float64(stats[len(stats)-1].Edges)
	if last >= first {
		t.Fatalf("bipartite loss did not decrease: %v → %v", first, last)
	}
}

func TestTrainStratumParts(t *testing.T) {
	g := smallSocial(t, 2)
	tr := newTrainer(t, g, Config{Epochs: 2, StratumParts: 3, Seed: 5})
	stats, err := tr.Train(nil)
	if err != nil {
		t.Fatal(err)
	}
	// All edges still trained exactly once per epoch.
	if stats[0].Edges != g.Edges.Len() {
		t.Fatalf("stratified epoch trained %d edges, want %d", stats[0].Edges, g.Edges.Len())
	}
	// Buckets are visited N times per epoch → more partition IO.
	if stats[0].PartitionIO <= 4 {
		t.Fatalf("expected extra IO from stratification, got %d", stats[0].PartitionIO)
	}
}

func TestUnbatchedChunkSizeOne(t *testing.T) {
	g := smallSocial(t, 1)
	tr := newTrainer(t, g, Config{Epochs: 1, ChunkSize: 1, UniformNegs: 10, Seed: 5})
	if _, err := tr.Train(nil); err != nil {
		t.Fatal(err)
	}
}

func TestViewFetchesEmbeddings(t *testing.T) {
	g := smallSocial(t, 4)
	tr := newTrainer(t, g, Config{Epochs: 1, Seed: 5})
	if _, err := tr.Train(nil); err != nil {
		t.Fatal(err)
	}
	v := tr.NewView()
	defer v.Close()
	buf := make([]float32, 16)
	seen := map[float32]bool{}
	for id := int32(0); id < 400; id += 37 {
		if _, err := v.Embedding(0, id, buf); err != nil {
			t.Fatal(err)
		}
		seen[buf[0]] = true
	}
	if len(seen) < 5 {
		t.Fatal("embeddings look degenerate")
	}
}

func TestNewRejectsBadConfig(t *testing.T) {
	g := smallSocial(t, 1)
	store := storage.NewMemStore(g.Schema, 8, 1, 1)
	if _, err := New(g, store, Config{}); err == nil {
		t.Fatal("expected error for Dim=0")
	}
	if _, err := New(g, store, Config{Dim: 8, BucketOrder: "bogus"}); err == nil {
		t.Fatal("expected error for bad bucket order")
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.BatchSize != 1000 || c.ChunkSize != 50 || c.UniformNegs != 50 {
		t.Fatalf("defaults wrong: %+v", c)
	}
	if c.NegAlpha != 0.5 {
		t.Fatalf("default alpha = %v, want 0.5 (paper §3.1)", c.NegAlpha)
	}
}
