// Package train implements PBG's single-machine training loop (§4): each
// epoch iterates over edge buckets in a configurable order (inside-out by
// default), swaps the two partitions of the current bucket in from the
// store, shuffles the bucket's edges, and trains them on a pool of HOGWILD
// workers with no synchronisation on the embedding rows (Recht et al. 2011),
// using the batched negative sampling of §4.3.
//
// The epoch executor is pipelined unless Config.PipelineOff is set: while
// one bucket trains, the shards the next buckets need prefetch on the
// store's background I/O pool and no-longer-needed shards write back
// asynchronously. Four Config knobs govern how far that pipeline may run
// ahead and how much memory it may hold:
//
//   - Lookahead is the initial prefetch depth — how many buckets ahead
//     shard hints are issued while the current bucket trains.
//   - MaxLookahead caps the adaptive controller (controller.go), which
//     moves the live depth within [0, MaxLookahead] between epochs:
//     widening while the measured IOWait share stays above 5% and the
//     projected window fits the budget, narrowing when the budget binds.
//   - MemBudgetBytes bounds the resident shard bytes: it is plumbed into
//     stores implementing SetMaxResidentBytes (storage.DiskStore, the
//     distributed checkout cache), bounds the controller's window
//     projections, and prices the partition buffer that the
//     "budget_aware" BucketOrder optimises against (order.go).
//   - PipelineOff restores the serial acquire/train/release baseline the
//     EpochStats.IOWait numbers are judged against.
//
// Each epoch reports an EpochStats: Loss/Edges/Duration for convergence
// tracking; PartitionIO (swap-ins this epoch) and IOWait vs Compute for the
// I/O-overlap split; Lookahead, LookaheadAction ("widen"/"narrow"/"hold")
// and ResidentHighWater for the controller's per-epoch decision trail; and
// PeakResident for the run-wide memory high-water the paper's Tables 3–4
// memory columns track.
package train

import (
	"fmt"
	"sync"
	"time"

	"pbg/internal/graph"
	"pbg/internal/model"
	"pbg/internal/obs"
	"pbg/internal/optim"
	"pbg/internal/partition"
	"pbg/internal/rng"
	"pbg/internal/sampling"
	"pbg/internal/storage"
	"pbg/internal/vec"
)

// Config collects every training hyperparameter. Zero values select the
// paper's defaults where one exists.
type Config struct {
	// Dim is the embedding dimension d.
	Dim int
	// Comparator: "dot", "cos", "l2", "squared_l2". Default "dot".
	Comparator string
	// Loss: "ranking", "logistic", "softmax". Default "ranking".
	Loss string
	// Margin λ for the ranking loss. Default 0.1.
	Margin float32
	// LR is the Adagrad learning rate for embeddings. Default 0.1.
	LR float32
	// RelationLR for operator parameters; defaults to LR.
	RelationLR float32
	// NegAlpha is the data-prevalence fraction α of §3.1. Default 0.5.
	NegAlpha float32
	// BatchSize B. Default 1000.
	BatchSize int
	// ChunkSize C: positives per chunk sharing negatives. Default 50.
	// ChunkSize 1 reproduces unbatched negative sampling (Figure 4).
	ChunkSize int
	// UniformNegs U: uniformly sampled candidates per side per chunk.
	// Default 50. Per-positive negatives ≈ 2·(C+U).
	UniformNegs int
	// Epochs to run when calling Train. Default 5.
	Epochs int
	// Workers is the number of HOGWILD goroutines. Default 1.
	Workers int
	// Hogwild true (default via HogwildOff=false) trains lock-free as in the
	// paper; setting HogwildOff uses striped row locks instead, which keeps
	// the race detector quiet at some throughput cost.
	HogwildOff bool
	// Reciprocal enables separate reverse relation parameters (the
	// 'reciprocal predicates' used for FB15k ComplEx, §5.4.1).
	Reciprocal bool
	// BucketOrder: "inside_out" (default), "sequential", "random",
	// "chained", or "budget_aware". The last optimises the bucket sequence
	// against the partition buffer MemBudgetBytes affords (Marius-style
	// buffer-aware ordering, minimising projected swaps and hence forced
	// evictions) — a greedy search on small grids, closed-form BETA
	// grouped/strided schedules past ~32×32 where the search turns
	// quadratic-slow (see partition.PlanBudgetAware); with no budget set
	// it degrades to inside_out.
	BucketOrder string
	// PipelineOff disables the pipelined epoch executor: buckets then swap
	// their partitions in and out serially (the pre-pipeline behaviour),
	// which is the baseline the EpochStats.IOWait numbers are judged
	// against. Default off (pipeline enabled).
	PipelineOff bool
	// Lookahead is the initial lookahead depth of the pipelined executor:
	// how many buckets ahead shard prefetches are issued while the current
	// bucket trains. Between epochs the adaptive controller moves the live
	// depth within [0, MaxLookahead], widening while measured IOWait stays
	// high and the projected resident bytes fit the budget, narrowing when
	// the budget binds. Default 1.
	Lookahead int
	// MaxLookahead caps the adaptive controller. Default: max(Lookahead, 4)
	// when MemBudgetBytes bounds the window, else Lookahead — without a
	// budget the controller only widens (growing the resident footprint)
	// when the caller opts in by raising MaxLookahead. Set MaxLookahead =
	// Lookahead to pin the depth.
	MaxLookahead int
	// MemBudgetBytes bounds the resident shard bytes during training: it is
	// plumbed into stores that support admission budgets (DiskStore, the
	// distributed remote store) and bounds the controller's lookahead
	// projections. 0 = unbounded (today's behaviour).
	MemBudgetBytes int64
	// Codec selects the on-disk shard encoding for stores that support one
	// (DiskStore via SetCodec): "fp32" (default), "fp16", or "int8" — see
	// storage.ParseCodec for accepted spellings. The codec also reprices
	// every budget consumer (admission, the lookahead controller's window
	// projections, budget_aware buffer slots), so a 2–4× smaller codec
	// widens the lookahead window and the partition buffer at the same
	// MemBudgetBytes. Adagrad state stays fp32 under every codec; fp16
	// loses embedding bits to rounding and int8 to per-row scaling, with
	// the MRR cost of each pinned by the servetest parity matrix.
	Codec string
	// StratumParts N > 1 splits each bucket's edges into N parts and sweeps
	// the buckets N times per epoch ('stratum losses', Gemulla et al. 2011;
	// §4.1 footnote 3).
	StratumParts int
	// Obs is the observability hub the trainer records metrics and spans
	// into (see internal/obs); it is also plumbed into stores that expose
	// SetObs, so one /metrics scrape covers the whole pipeline. Nil gives
	// the trainer a private quiet hub: metrics still accumulate (IOTotals,
	// EpochStats, and tests read them) but spans no-op and nothing is
	// exported.
	Obs *obs.Hub
	// InitScale scales embedding initialisation. Default 1.
	InitScale float32
	// Seed drives all randomness.
	Seed uint64
}

func (c Config) withDefaults() Config {
	if c.Comparator == "" {
		c.Comparator = "dot"
	}
	if c.Loss == "" {
		c.Loss = "ranking"
	}
	if c.Margin == 0 {
		c.Margin = 0.1
	}
	if c.LR == 0 {
		c.LR = 0.1
	}
	if c.RelationLR == 0 {
		c.RelationLR = c.LR
	}
	if c.NegAlpha == 0 {
		c.NegAlpha = 0.5
	}
	if c.BatchSize == 0 {
		c.BatchSize = 1000
	}
	if c.ChunkSize == 0 {
		c.ChunkSize = 50
	}
	if c.UniformNegs == 0 {
		c.UniformNegs = 50
	}
	if c.Epochs == 0 {
		c.Epochs = 5
	}
	if c.Workers == 0 {
		c.Workers = 1
	}
	if c.BucketOrder == "" {
		c.BucketOrder = partition.OrderInsideOut
	}
	if c.StratumParts == 0 {
		c.StratumParts = 1
	}
	if c.Lookahead == 0 {
		c.Lookahead = 1
	}
	if c.MaxLookahead == 0 {
		c.MaxLookahead = c.Lookahead
		// Widening trades resident memory for overlap, so the default only
		// turns it on when a budget bounds that trade; unbudgeted runs keep
		// the fixed depth (and its fixed footprint) unless the caller opts
		// in by raising MaxLookahead.
		if c.MemBudgetBytes > 0 && c.MaxLookahead < defaultMaxLookahead {
			c.MaxLookahead = defaultMaxLookahead
		}
	}
	if c.Lookahead > c.MaxLookahead {
		c.Lookahead = c.MaxLookahead
	}
	if c.InitScale == 0 {
		c.InitScale = 1
	}
	return c
}

// EpochStats summarises one epoch.
type EpochStats struct {
	Epoch         int
	Loss          float64
	Edges         int
	Duration      time.Duration
	PartitionIO   int // partition loads (swap-ins) this epoch
	PeakResident  int64
	BucketsActive int
	// IOWait is how long the epoch thread stalled on shard acquire/release
	// I/O at bucket transitions; with the pipelined executor most loads and
	// write-backs overlap training, so IOWait shrinks toward zero while the
	// serial (PipelineOff) baseline pays the full swap cost here.
	IOWait time.Duration
	// Compute is the time spent inside bucket training (HOGWILD workers).
	Compute time.Duration
	// Lookahead is the prefetch depth the pipelined executor used this
	// epoch (0 when the pipeline is off).
	Lookahead int
	// LookaheadAction is the adaptive controller's end-of-epoch decision
	// for the next epoch: "widen", "narrow", or "hold" ("" with the
	// pipeline off or after a failed epoch).
	LookaheadAction string
	// ResidentHighWater is the largest store ResidentBytes sampled during
	// this epoch (PeakResident is the high-water across the whole run).
	ResidentHighWater int64
}

// Trainer owns the training state for one graph.
type Trainer struct {
	cfg     Config
	g       *graph.Graph
	store   storage.Store
	scorers []*model.Scorer // per relation
	// relParams[r] is the full parameter block (fwd|rev) for relation r.
	relParams [][]float32
	relOptFwd []*optim.DenseAdagrad
	relOptRev []*optim.DenseAdagrad
	relMu     []sync.Mutex
	samplers  *sampling.Set
	rowOpt    optim.RowAdagrad

	buckets []partition.Bucket
	ranges  []graph.BucketRange
	nSrc    int
	nDst    int
	edges   *graph.EdgeList // bucket-sorted copy of the training edges

	// relSrc/relDst hold each relation's source/destination entity type
	// index, hoisted out of the hot path (EntityTypeIndex is a name scan).
	relSrc []int
	relDst []int

	// workerStates[w] is worker w's reusable scratch (workspace, gradient
	// buffers, gather buffers, relation grouping); allocating it once per
	// trainer keeps the per-bucket hot path allocation free.
	workerStates []*workerState

	// Striped row locks for the non-HOGWILD mode.
	stripes []sync.Mutex

	root *rng.RNG

	epochsRun int
	peakBytes int64

	// lookahead is the live prefetch depth the adaptive controller manages
	// between epochs (see controller.go); cfg.Lookahead is only its initial
	// value. epochHighWater tracks ResidentBytes within the current epoch;
	// winBytes caches windowBytes projections per depth.
	lookahead      int
	epochHighWater int64
	winBytes       map[int]int64

	// codec is the parsed Config.Codec; every budget projection prices
	// shards under it, matching the store's own admission accounting.
	codec storage.Codec

	// obs is Config.Obs or a private quiet hub; tm caches its registry
	// handles so the epoch path never takes the registry lock. epochSpan is
	// the span covering the epoch in flight (nil outside TrainEpoch and on
	// hubs without a tracer); only the epoch thread touches it. IOWait and
	// Compute stall/training time live in tm's counters — EpochStats reports
	// their per-epoch deltas.
	obs       *obs.Hub
	tm        trainMetrics
	epochSpan *obs.Span
}

// New prepares a trainer over the given training graph and store. The store
// decides the memory regime: MemStore keeps everything resident, DiskStore
// swaps partitions per §4.1.
func New(g *graph.Graph, store storage.Store, cfg Config) (*Trainer, error) {
	cfg = cfg.withDefaults()
	if cfg.Dim <= 0 {
		return nil, fmt.Errorf("train: Dim must be positive")
	}
	codec, err := storage.ParseCodec(cfg.Codec)
	if err != nil {
		return nil, fmt.Errorf("train: %w", err)
	}
	t := &Trainer{cfg: cfg, g: g, store: store, root: rng.New(cfg.Seed), codec: codec}
	t.obs = cfg.Obs
	if t.obs == nil {
		t.obs = obs.NewQuietHub()
	}
	t.tm = newTrainMetrics(t.obs.Reg)

	// Per-relation scorers (relations may use different operators).
	t.scorers = make([]*model.Scorer, len(g.Schema.Relations))
	t.relParams = make([][]float32, len(g.Schema.Relations))
	t.relOptFwd = make([]*optim.DenseAdagrad, len(g.Schema.Relations))
	t.relOptRev = make([]*optim.DenseAdagrad, len(g.Schema.Relations))
	t.relMu = make([]sync.Mutex, len(g.Schema.Relations))
	for r, rel := range g.Schema.Relations {
		sc, err := model.NewScorer(cfg.Dim, rel.Operator, cfg.Comparator, cfg.Loss, cfg.Margin, cfg.Reciprocal)
		if err != nil {
			return nil, fmt.Errorf("train: relation %q: %w", rel.Name, err)
		}
		t.scorers[r] = sc
		t.relParams[r] = make([]float32, sc.RelParamCount())
		sc.InitRelParams(t.relParams[r])
		half := sc.Op.ParamCount(cfg.Dim)
		t.relOptFwd[r] = optim.NewDenseAdagrad(cfg.RelationLR, half)
		if cfg.Reciprocal {
			t.relOptRev[r] = optim.NewDenseAdagrad(cfg.RelationLR, half)
		}
	}

	t.relSrc = make([]int, len(g.Schema.Relations))
	t.relDst = make([]int, len(g.Schema.Relations))
	for r, rel := range g.Schema.Relations {
		t.relSrc[r] = g.Schema.EntityTypeIndex(rel.SourceType)
		t.relDst[r] = g.Schema.EntityTypeIndex(rel.DestType)
	}

	degrees := graph.ComputeDegrees(g)
	t.samplers = sampling.NewSet(g.Schema, degrees, cfg.NegAlpha)
	t.rowOpt = optim.NewRowAdagrad(cfg.LR)

	t.workerStates = make([]*workerState, cfg.Workers)
	for w := range t.workerStates {
		t.workerStates[w] = t.newWorkerState()
	}

	// Bucket-sort a copy of the edges.
	t.nSrc, t.nDst = bucketDims(g.Schema)
	t.edges = g.Edges.Clone()
	t.ranges = graph.SortByBucket(g.Schema, t.edges, t.nSrc, t.nDst)
	order, err := t.buildOrder()
	if err != nil {
		return nil, err
	}
	t.buckets = order

	t.stripes = make([]sync.Mutex, 1024)
	t.winBytes = make(map[int]int64)

	// Plumb the shard codec into stores that encode one (DiskStore); the
	// codec must land before the budget so admission prices quantized bytes
	// from the first hint. Stores with no on-disk format (MemStore) have
	// nothing to encode — for them the codec takes effect at Checkpoint
	// time, when the shards first meet a disk.
	if codec != storage.CodecFP32 {
		if c, ok := store.(interface{ SetCodec(storage.Codec) }); ok {
			c.SetCodec(codec)
		}
	}
	// Plumb the memory budget into stores that enforce one (DiskStore, the
	// distributed remote store); others simply ignore it. Then pick the
	// initial lookahead the budget can actually afford.
	if cfg.MemBudgetBytes > 0 {
		if b, ok := store.(interface{ SetMaxResidentBytes(int64) }); ok {
			b.SetMaxResidentBytes(cfg.MemBudgetBytes)
		}
	}
	// Share the caller's hub with stores that can record into it, so the
	// storage counters and spans land beside the trainer's own. A nil
	// Config.Obs leaves the store on its private registry — per-store
	// IOStats exactness is part of its contract.
	if cfg.Obs != nil {
		if o, ok := store.(interface{ SetObs(*obs.Hub) }); ok {
			o.SetObs(cfg.Obs)
		}
	}
	t.initLookahead()
	t.tm.lookahead.Set(int64(t.lookahead))
	return t, nil
}

// bucketDims returns the bucket grid dimensions implied by the schema.
func bucketDims(s *graph.Schema) (nSrc, nDst int) {
	nSrc, nDst = 1, 1
	for _, r := range s.Relations {
		if p := s.Entity(r.SourceType).NumPartitions; p > nSrc {
			nSrc = p
		}
		if p := s.Entity(r.DestType).NumPartitions; p > nDst {
			nDst = p
		}
	}
	return nSrc, nDst
}

// Buckets exposes the training bucket order (for tests and the distributed
// lock server).
func (t *Trainer) Buckets() []partition.Bucket { return t.buckets }

// Schema returns the graph schema the trainer was built from.
func (t *Trainer) Schema() *graph.Schema { return t.g.Schema }

// Codec reports the parsed shard codec of the run (Config.Codec);
// Model.Checkpoint encodes checkpoints under it.
func (t *Trainer) Codec() storage.Codec { return t.codec }

// PeakResidentBytes reports the largest model footprint held in memory so
// far (sampled while bucket shards are resident).
func (t *Trainer) PeakResidentBytes() int64 { return t.peakBytes }

// TrainBucket trains all edges of one bucket (one lock-server lease in
// distributed mode). Empty buckets return immediately.
func (t *Trainer) TrainBucket(b partition.Bucket) (loss float64, edges int, err error) {
	rg := t.ranges[b.Index(t.nDst)]
	if rg.Empty() {
		return 0, 0, nil
	}
	return t.trainBucket(b, rg.Lo, rg.Hi)
}

// BucketEdgeCount returns the number of training edges in bucket b.
func (t *Trainer) BucketEdgeCount(b partition.Bucket) int {
	return t.ranges[b.Index(t.nDst)].Len()
}

// BucketDims returns the (source, destination) partition grid size.
func (t *Trainer) BucketDims() (nSrc, nDst int) { return t.nSrc, t.nDst }

// WithRelParams runs f with relation r's parameter block while holding its
// update lock; used by the distributed parameter-sync thread to snapshot and
// overwrite parameters without racing the HOGWILD workers.
func (t *Trainer) WithRelParams(r int, f func(params []float32)) {
	t.relMu[r].Lock()
	defer t.relMu[r].Unlock()
	f(t.relParams[r])
}

// RelParams returns the live parameter block of relation r.
func (t *Trainer) RelParams(r int) []float32 { return t.relParams[r] }

// SetRelParams overwrites relation r's parameters (distributed sync).
func (t *Trainer) SetRelParams(r int, p []float32) { copy(t.relParams[r], p) }

// Scorer returns the scorer used for relation r.
func (t *Trainer) Scorer(r int) *model.Scorer { return t.scorers[r] }

// Store returns the backing embedding store.
func (t *Trainer) Store() storage.Store { return t.store }

// Config returns the effective (defaulted) configuration.
func (t *Trainer) Config() Config { return t.cfg }

// Train runs cfg.Epochs epochs and returns per-epoch stats. onEpoch, if
// non-nil, runs after each epoch (learning-curve recording).
func (t *Trainer) Train(onEpoch func(EpochStats)) ([]EpochStats, error) {
	var out []EpochStats
	for e := 0; e < t.cfg.Epochs; e++ {
		st, err := t.TrainEpoch()
		if err != nil {
			return out, err
		}
		out = append(out, st)
		if onEpoch != nil {
			onEpoch(st)
		}
	}
	return out, nil
}

// epochItem is one unit of epoch work: a stratum slice of one bucket.
type epochItem struct {
	b      partition.Bucket
	lo, hi int
}

// epochItems flattens the stratum × bucket iteration into the ordered work
// list the (pipelined) epoch executor runs and looks ahead over.
func (t *Trainer) epochItems() []epochItem {
	var items []epochItem
	for stratum := 0; stratum < t.cfg.StratumParts; stratum++ {
		for _, b := range t.buckets {
			rg := t.ranges[b.Index(t.nDst)]
			if rg.Empty() {
				continue
			}
			lo, hi := stratumSlice(rg, stratum, t.cfg.StratumParts)
			if hi <= lo {
				continue
			}
			items = append(items, epochItem{b: b, lo: lo, hi: hi})
		}
	}
	return items
}

// countSwapIns updates the PartitionIO stat the way partition.SwapCount
// does: partitions the previous bucket did not hold must be swapped in.
func countSwapIns(b partition.Bucket, held map[int]bool, stats *EpochStats) map[int]bool {
	need := map[int]bool{}
	for _, p := range b.Parts() {
		need[p] = true
		if !held[p] {
			stats.PartitionIO++
		}
	}
	return need
}

// TrainEpoch runs one pass over all buckets. Unless cfg.PipelineOff is set
// it uses the pipelined executor: while a bucket trains, the shards the next
// cfg.Lookahead buckets need are prefetched by the store's background I/O
// and no-longer-needed shards are written back asynchronously, so bucket
// transitions cost only the I/O that failed to overlap (reported as
// stats.IOWait).
func (t *Trainer) TrainEpoch() (EpochStats, error) {
	start := time.Now()
	stats := EpochStats{Epoch: t.epochsRun}
	t.epochHighWater = 0
	if !t.cfg.PipelineOff {
		stats.Lookahead = t.lookahead
	}
	t.epochSpan = t.obs.Trace.Start("train", fmt.Sprintf("epoch %d", t.epochsRun))
	ioBase, computeBase := t.tm.ioWait.Value(), t.tm.compute.Value()
	items := t.epochItems()
	var err error
	if t.cfg.PipelineOff {
		err = t.runEpochSerial(items, &stats)
	} else {
		err = t.runEpochPipelined(items, &stats)
	}
	t.epochSpan.End()
	t.epochSpan = nil
	stats.IOWait = time.Duration(t.tm.ioWait.Value() - ioBase)
	stats.Compute = time.Duration(t.tm.compute.Value() - computeBase)
	stats.Duration = time.Since(start)
	stats.PeakResident = t.peakBytes
	stats.ResidentHighWater = t.epochHighWater
	t.tm.edges.Add(int64(stats.Edges))
	t.tm.swapIns.Add(int64(stats.PartitionIO))
	if err != nil {
		return stats, err
	}
	if !t.cfg.PipelineOff {
		t.adaptLookahead(&stats)
		t.tm.decisions[stats.LookaheadAction].Inc()
		t.tm.lookahead.Set(int64(t.lookahead))
	}
	t.epochsRun++
	return stats, nil
}

// runEpochSerial is the pre-pipeline baseline: each bucket acquires its
// shards, trains, and synchronously releases them before the next bucket
// starts.
func (t *Trainer) runEpochSerial(items []epochItem, stats *EpochStats) error {
	held := map[int]bool{}
	for _, it := range items {
		held = countSwapIns(it.b, held, stats)
		loss, edges, err := t.trainBucket(it.b, it.lo, it.hi)
		if err != nil {
			return err
		}
		stats.Loss += loss
		stats.Edges += edges
		stats.BucketsActive++
	}
	return nil
}

// runEpochPipelined overlaps partition I/O with training (§4.1 made real):
// shards shared with the next bucket simply stay held (their refcount never
// reaches zero, so a shared partition never bounces through disk), shards
// the next buckets need are prefetched while the current bucket trains, and
// shards the new bucket no longer needs are released first — their
// asynchronous write-back overlaps the loads of the bucket's new shards.
func (t *Trainer) runEpochPipelined(items []epochItem, stats *EpochStats) error {
	held := map[shardKey]shardRef{}
	heldParts := map[int]bool{}
	// prefetched tracks hints not yet consumed by an Acquire; on a normal
	// epoch end every lookahead target gets acquired and the set drains, but
	// an abort must evict the leftovers (see discardPrefetched).
	prefetched := map[shardKey]bool{}
	releaseHeld := func() error {
		t0 := time.Now()
		var first error
		for k := range held {
			if err := t.store.Release(k.t, k.p); err != nil && first == nil {
				first = err
			}
			delete(held, k)
		}
		if len(prefetched) > 0 {
			keys := make([]shardKey, 0, len(prefetched))
			for k := range prefetched {
				keys = append(keys, k)
				delete(prefetched, k)
			}
			t.discardPrefetched(keys)
		}
		t.tm.ioWait.Add(time.Since(t0).Nanoseconds())
		return first
	}
	for i, it := range items {
		heldParts = countSwapIns(it.b, heldParts, stats)
		keys := t.bucketShardKeys(it.b)
		need := make(map[shardKey]bool, len(keys))
		for _, k := range keys {
			need[k] = true
		}
		t0 := time.Now()
		// Drop shards this bucket no longer needs first: their write-back
		// runs in the background while the loads below wait.
		for k := range held {
			if !need[k] {
				delete(held, k)
				if err := t.store.Release(k.t, k.p); err != nil {
					releaseHeld()
					return err
				}
			}
		}
		// Hint every missing shard before acquiring any, so the loads the
		// prefetcher has not already finished proceed in parallel.
		for _, k := range keys {
			if _, ok := held[k]; !ok {
				t.store.Prefetch(k.t, k.p)
				prefetched[k] = true
			}
		}
		shards := make(map[shardKey]shardRef, len(keys))
		for _, k := range keys {
			if ref, ok := held[k]; ok {
				shards[k] = ref
				continue
			}
			sh, err := t.store.Acquire(k.t, k.p)
			if err != nil {
				delete(prefetched, k) // its entry died with the failed load
				releaseHeld()
				return err
			}
			delete(prefetched, k)
			ref := shardRef{shard: sh, ent: t.g.Schema.Entities[k.t]}
			held[k] = ref
			shards[k] = ref
		}
		t.tm.ioWait.Add(time.Since(t0).Nanoseconds())
		t.sampleResident()
		// Hint the shards the next buckets will need; the store loads them
		// on its background pool while this bucket trains.
		for l := 1; l <= t.lookahead && i+l < len(items); l++ {
			for _, k := range t.bucketShardKeys(items[i+l].b) {
				if _, ok := held[k]; !ok {
					t.store.Prefetch(k.t, k.p)
					prefetched[k] = true
				}
			}
		}
		t1 := time.Now()
		loss, edges, err := t.runBucket(it.b, it.lo, it.hi, shards)
		t.tm.compute.Add(time.Since(t1).Nanoseconds())
		if err != nil {
			releaseHeld()
			return err
		}
		stats.Loss += loss
		stats.Edges += edges
		stats.BucketsActive++
	}
	return releaseHeld()
}

func stratumSlice(rg graph.BucketRange, k, n int) (lo, hi int) {
	size := rg.Len()
	lo = rg.Lo + k*size/n
	hi = rg.Lo + (k+1)*size/n
	return lo, hi
}

// shardRef resolves entity ids of one (type, partition) to rows of an
// acquired shard.
type shardRef struct {
	shard *storage.Shard
	ent   graph.EntityType
}

func (s shardRef) row(id int32) []float32 { return s.shard.Row(s.ent.LocalOffset(id)) }
func (s shardRef) acc(id int32) *float32  { return &s.shard.Acc[s.ent.LocalOffset(id)] }

type shardKey struct{ t, p int }

// bucketShardKeys returns every (entity type, partition) combination the
// bucket's relations can touch, deduplicated, using the precomputed
// per-relation type indices.
func (t *Trainer) bucketShardKeys(b partition.Bucket) []shardKey {
	keys := make([]shardKey, 0, 2*len(t.g.Schema.Relations))
	add := func(ti, part int) {
		if !t.g.Schema.Entities[ti].Partitioned() {
			part = 0
		}
		k := shardKey{ti, part}
		for _, have := range keys {
			if have == k {
				return
			}
		}
		keys = append(keys, k)
	}
	for r := range t.g.Schema.Relations {
		add(t.relSrc[r], b.P1)
		add(t.relDst[r], b.P2)
	}
	return keys
}

// acquireBucketShards loads every shard the bucket needs. Unless the
// pipeline is disabled, all keys are hinted via Prefetch before the first
// Acquire, so stores with background I/O (DiskStore, the distributed remote
// store) load them in parallel instead of serialising one read or RPC round
// trip per shard. With PipelineOff the acquires stay strictly sequential —
// the honest serial baseline.
func (t *Trainer) acquireBucketShards(b partition.Bucket) (map[shardKey]shardRef, error) {
	keys := t.bucketShardKeys(b)
	if !t.cfg.PipelineOff {
		for _, k := range keys {
			t.store.Prefetch(k.t, k.p)
		}
	}
	out := make(map[shardKey]shardRef, len(keys))
	for i, k := range keys {
		sh, err := t.store.Acquire(k.t, k.p)
		if err != nil {
			t.releaseBucketShards(out)
			t.discardPrefetched(keys[i:])
			return nil, err
		}
		out[k] = shardRef{shard: sh, ent: t.g.Schema.Entities[k.t]}
	}
	return out, nil
}

// discardPrefetched evicts shards that were hinted via Prefetch but never
// acquired, after an abort. A refs==0 cache entry can otherwise never be
// released, and on the distributed remote store a stale cached shard would
// mask updates other trainers make once the bucket lease is abandoned.
// Acquire-then-Release is best effort: if the prefetch itself failed, the
// entry is already gone and Acquire's error is ignored.
func (t *Trainer) discardPrefetched(keys []shardKey) {
	if t.cfg.PipelineOff {
		return
	}
	for _, k := range keys {
		if _, err := t.store.Acquire(k.t, k.p); err == nil {
			_ = t.store.Release(k.t, k.p)
		}
	}
}

func (t *Trainer) releaseBucketShards(m map[shardKey]shardRef) error {
	var first error
	for k := range m {
		if err := t.store.Release(k.t, k.p); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// trainBucket trains edges [lo, hi) of the bucket-sorted edge list, which
// all belong to bucket b, acquiring and releasing the bucket's shards
// around the work. The pipelined executor manages shard lifetimes itself
// and calls runBucket directly; this self-contained form serves the serial
// baseline and the distributed node's per-lease TrainBucket.
func (t *Trainer) trainBucket(b partition.Bucket, lo, hi int) (loss float64, edges int, err error) {
	t0 := time.Now()
	shards, err := t.acquireBucketShards(b)
	t.tm.ioWait.Add(time.Since(t0).Nanoseconds())
	if err != nil {
		return 0, 0, err
	}
	// Release errors must surface: with a distributed store, Release is the
	// write-back that publishes this bucket's updates, and dropping its
	// failure would mark the bucket done while its training is lost.
	defer func() {
		t1 := time.Now()
		rerr := t.releaseBucketShards(shards)
		t.tm.ioWait.Add(time.Since(t1).Nanoseconds())
		if rerr != nil && err == nil {
			loss, edges, err = 0, 0, rerr
		}
	}()
	// Sample peak model memory while the bucket's shards are resident (the
	// Tables 3–4 memory column).
	t.sampleResident()
	t2 := time.Now()
	loss, edges, err = t.runBucket(b, lo, hi, shards)
	t.tm.compute.Add(time.Since(t2).Nanoseconds())
	return loss, edges, err
}

// runBucket trains edges [lo, hi) of bucket b on the HOGWILD worker pool,
// using shards already acquired by the caller.
func (t *Trainer) runBucket(b partition.Bucket, lo, hi int, shards map[shardKey]shardRef) (loss float64, edges int, err error) {
	sp := t.startBucketSpan(b)
	defer sp.End()
	n := hi - lo
	perm := make([]int, n)
	t.root.Perm(perm)

	workers := t.cfg.Workers
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	losses := make([]float64, workers)
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int, r *rng.RNG) {
			defer wg.Done()
			wlo := w * n / workers
			whi := (w + 1) * n / workers
			losses[w], errs[w] = t.workerLoop(t.workerStates[w], b, shards, perm[wlo:whi], lo, r)
		}(w, t.root.Split())
	}
	wg.Wait()
	for w := 0; w < workers; w++ {
		if errs[w] != nil {
			return 0, 0, errs[w]
		}
		loss += losses[w]
	}
	if n > 0 {
		t.tm.bucketLoss.Observe(loss / float64(n))
	}
	return loss, n, nil
}

// workerState is one HOGWILD worker's reusable scratch. It persists across
// chunks, relations, buckets, and epochs, so the steady-state worker loop
// allocates nothing.
type workerState struct {
	ws *model.Workspace
	// grads[rel] holds relation rel's gradient buffers (operator parameter
	// counts differ between relations, so these cannot be shared). Indexed
	// by relation so the worker loop walks relations in schema order.
	grads []*model.ChunkGrad
	// byRel groups the worker's edge indices by relation; the slices are
	// truncated and refilled each bucket. Relation-indexed (not a map) so
	// chunk processing order — and with it the negative-sampling RNG
	// stream — is deterministic for a fixed seed.
	byRel   [][]int
	inBuf   model.ChunkInput
	srcBuf  []float32
	dstBuf  []float32
	usrcBuf []float32
	udstBuf []float32
	// fwdCopy/revCopy hold the striped-lock mode's per-chunk snapshot of the
	// relation parameters (see workerLoop).
	fwdCopy []float32
	revCopy []float32
}

func (t *Trainer) newWorkerState() *workerState {
	c, u, d := t.cfg.ChunkSize, t.cfg.UniformNegs, t.cfg.Dim
	nrel := len(t.g.Schema.Relations)
	return &workerState{
		grads: make([]*model.ChunkGrad, nrel),
		byRel: make([][]int, nrel),
		inBuf: model.ChunkInput{
			SrcIDs: make([]int32, c), DstIDs: make([]int32, c),
			USrcIDs: make([]int32, u), UDstIDs: make([]int32, u),
		},
		srcBuf:  make([]float32, c*d),
		dstBuf:  make([]float32, c*d),
		usrcBuf: make([]float32, u*d),
		udstBuf: make([]float32, u*d),
	}
}

// workerLoop is one HOGWILD worker: it groups its edge indices by relation
// (batches share a relation, §4.3 last paragraph) and processes chunks.
// Relations are walked in schema order — byRel is relation-indexed, never a
// map — so a fixed seed replays the identical chunk and RNG sequence.
//
//pbg:hotpath
func (t *Trainer) workerLoop(st *workerState, b partition.Bucket, shards map[shardKey]shardRef, idx []int, base int, r *rng.RNG) (float64, error) {
	c := t.cfg.ChunkSize
	u := t.cfg.UniformNegs
	d := t.cfg.Dim

	byRel := st.byRel
	for rel := range byRel {
		byRel[rel] = byRel[rel][:0]
	}
	for _, i := range idx {
		rel := t.edges.Rels[base+i]
		byRel[rel] = append(byRel[rel], base+i)
	}

	in := &st.inBuf

	// Gather vs score time accumulates in locals and lands on the shared
	// counters once per bucket, so the per-chunk hot path stays free of
	// atomics (the clock reads below are the only instrumentation cost).
	var gatherNs, scoreNs int64

	var total float64
	for rel := range byRel {
		list := byRel[rel]
		if len(list) == 0 {
			continue
		}
		sc := t.scorers[rel]
		if st.ws == nil {
			// Workspace shape depends only on (chunk, negatives, dim), so it
			// is shared across relations; gradient buffers are per relation
			// because operator parameter counts differ.
			st.ws = sc.NewWorkspace(c, u)
		}
		ws := st.ws
		grad := st.grads[rel]
		if grad == nil {
			grad = sc.NewChunkGrad(c, u)
			st.grads[rel] = grad
		}
		relCfg := t.g.Schema.Relations[rel]
		srcRef := t.lookupRef(shards, t.relSrc[rel], b.P1)
		dstRef := t.lookupRef(shards, t.relDst[rel], b.P2)
		srcSmp := t.samplers.ForRelationSource(int32(rel), b.P1)
		dstSmp := t.samplers.ForRelationDest(int32(rel), b.P2)
		fwd, rev := sc.SplitRelParams(t.relParams[rel])

		for chunkLo := 0; chunkLo < len(list); chunkLo += c {
			chunkHi := chunkLo + c
			if chunkHi > len(list) {
				chunkHi = len(list)
			}
			cc := chunkHi - chunkLo
			g0 := time.Now()
			// Gather.
			in.SrcIDs = st.inBuf.SrcIDs[:cc]
			in.DstIDs = st.inBuf.DstIDs[:cc]
			in.USrcIDs = st.inBuf.USrcIDs[:u]
			in.UDstIDs = st.inBuf.UDstIDs[:u]
			for k, ei := range list[chunkLo:chunkHi] {
				in.SrcIDs[k] = t.edges.Srcs[ei]
				in.DstIDs[k] = t.edges.Dsts[ei]
			}
			sampling.SampleMany(srcSmp, r, in.USrcIDs)
			sampling.SampleMany(dstSmp, r, in.UDstIDs)
			in.Src = t.gather(st.srcBuf, srcRef, in.SrcIDs, d)
			in.Dst = t.gather(st.dstBuf, dstRef, in.DstIDs, d)
			in.USrc = t.gather(st.usrcBuf, srcRef, in.USrcIDs, d)
			in.UDst = t.gather(st.udstBuf, dstRef, in.UDstIDs, d)
			in.RelWeight = relCfg.EffectiveWeight()
			in.RelFwd = fwd
			in.RelRev = rev
			if t.cfg.HogwildOff && (len(fwd) > 0 || len(rev) > 0) {
				// Striped-lock mode must not read parameters another worker
				// is updating under relMu: score from a snapshot taken under
				// the lock (the updates themselves still hit the live block).
				t.relMu[rel].Lock()
				st.fwdCopy = append(st.fwdCopy[:0], fwd...)
				st.revCopy = append(st.revCopy[:0], rev...)
				t.relMu[rel].Unlock()
				in.RelFwd = st.fwdCopy
				if rev != nil {
					in.RelRev = st.revCopy
				}
			}

			g1 := time.Now()
			gatherNs += g1.Sub(g0).Nanoseconds()
			sc.ScoreChunk(ws, in, grad)
			total += grad.Loss
			g2 := time.Now()
			scoreNs += g2.Sub(g1).Nanoseconds()

			// Scatter updates.
			t.applyRows(srcRef, in.SrcIDs, grad.Src.Data, d)
			t.applyRows(dstRef, in.DstIDs, grad.Dst.Data, d)
			t.applyRows(srcRef, in.USrcIDs, grad.USrc.Data, d)
			t.applyRows(dstRef, in.UDstIDs, grad.UDst.Data, d)
			if len(grad.RelFwd) > 0 {
				t.relMu[rel].Lock()
				t.relOptFwd[rel].Update(fwd, grad.RelFwd)
				if rev != nil {
					t.relOptRev[rel].Update(rev, grad.RelRev)
				}
				t.relMu[rel].Unlock()
			}
			gatherNs += time.Since(g2).Nanoseconds()
		}
	}
	t.tm.workerGather.Add(gatherNs)
	t.tm.workerScore.Add(scoreNs)
	return total, nil
}

func (t *Trainer) lookupRef(shards map[shardKey]shardRef, typeIdx, part int) shardRef {
	if !t.g.Schema.Entities[typeIdx].Partitioned() {
		part = 0
	}
	ref, ok := shards[shardKey{typeIdx, part}]
	if !ok {
		panic(fmt.Sprintf("train: shard (%d,%d) not acquired", typeIdx, part))
	}
	return ref
}

// gather copies the embedding rows of ids into a matrix backed by buf. In
// striped-lock (HogwildOff) mode each row is copied under its stripe so the
// read cannot race a concurrent applyRows update; in HOGWILD mode the copy
// is lock-free and any torn read is the paper's benign race.
//
//pbg:hotpath
func (t *Trainer) gather(buf []float32, ref shardRef, ids []int32, d int) vec.Matrix {
	m := vec.MatrixFrom(buf[:len(ids)*d], len(ids), d)
	if t.cfg.HogwildOff {
		for k, id := range ids {
			mu := &t.stripes[rowStripe(ref.shard.TypeIndex, id)]
			mu.Lock()
			copy(m.Row(k), ref.row(id))
			mu.Unlock()
		}
		return m
	}
	for k, id := range ids {
		copy(m.Row(k), ref.row(id))
	}
	return m
}

// applyRows applies per-row Adagrad updates for the gathered gradient block.
//
//pbg:hotpath
func (t *Trainer) applyRows(ref shardRef, ids []int32, grads []float32, d int) {
	for k, id := range ids {
		g := grads[k*d : (k+1)*d]
		if t.cfg.HogwildOff {
			mu := &t.stripes[rowStripe(ref.shard.TypeIndex, id)]
			mu.Lock()
			t.rowOpt.Update(ref.row(id), g, ref.acc(id))
			mu.Unlock()
		} else {
			// HOGWILD: benign races on float32 rows, as in the paper.
			t.rowOpt.Update(ref.row(id), g, ref.acc(id))
		}
	}
}

func rowStripe(typeIdx int, id int32) int {
	h := uint32(typeIdx)*2654435761 + uint32(id)*2246822519
	return int(h % 1024)
}
