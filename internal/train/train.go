// Package train implements PBG's single-machine training loop (§4): each
// epoch iterates over edge buckets in a configurable order (inside-out by
// default), swaps the two partitions of the current bucket in from the
// store, shuffles the bucket's edges, and trains them on a pool of HOGWILD
// workers with no synchronisation on the embedding rows (Recht et al. 2011),
// using the batched negative sampling of §4.3.
package train

import (
	"fmt"
	"sync"
	"time"

	"pbg/internal/graph"
	"pbg/internal/model"
	"pbg/internal/optim"
	"pbg/internal/partition"
	"pbg/internal/rng"
	"pbg/internal/sampling"
	"pbg/internal/storage"
	"pbg/internal/vec"
)

// Config collects every training hyperparameter. Zero values select the
// paper's defaults where one exists.
type Config struct {
	// Dim is the embedding dimension d.
	Dim int
	// Comparator: "dot", "cos", "l2", "squared_l2". Default "dot".
	Comparator string
	// Loss: "ranking", "logistic", "softmax". Default "ranking".
	Loss string
	// Margin λ for the ranking loss. Default 0.1.
	Margin float32
	// LR is the Adagrad learning rate for embeddings. Default 0.1.
	LR float32
	// RelationLR for operator parameters; defaults to LR.
	RelationLR float32
	// NegAlpha is the data-prevalence fraction α of §3.1. Default 0.5.
	NegAlpha float32
	// BatchSize B. Default 1000.
	BatchSize int
	// ChunkSize C: positives per chunk sharing negatives. Default 50.
	// ChunkSize 1 reproduces unbatched negative sampling (Figure 4).
	ChunkSize int
	// UniformNegs U: uniformly sampled candidates per side per chunk.
	// Default 50. Per-positive negatives ≈ 2·(C+U).
	UniformNegs int
	// Epochs to run when calling Train. Default 5.
	Epochs int
	// Workers is the number of HOGWILD goroutines. Default 1.
	Workers int
	// Hogwild true (default via HogwildOff=false) trains lock-free as in the
	// paper; setting HogwildOff uses striped row locks instead, which keeps
	// the race detector quiet at some throughput cost.
	HogwildOff bool
	// Reciprocal enables separate reverse relation parameters (the
	// 'reciprocal predicates' used for FB15k ComplEx, §5.4.1).
	Reciprocal bool
	// BucketOrder: "inside_out" (default), "sequential", "random", "chained".
	BucketOrder string
	// StratumParts N > 1 splits each bucket's edges into N parts and sweeps
	// the buckets N times per epoch ('stratum losses', Gemulla et al. 2011;
	// §4.1 footnote 3).
	StratumParts int
	// InitScale scales embedding initialisation. Default 1.
	InitScale float32
	// Seed drives all randomness.
	Seed uint64
}

func (c Config) withDefaults() Config {
	if c.Comparator == "" {
		c.Comparator = "dot"
	}
	if c.Loss == "" {
		c.Loss = "ranking"
	}
	if c.Margin == 0 {
		c.Margin = 0.1
	}
	if c.LR == 0 {
		c.LR = 0.1
	}
	if c.RelationLR == 0 {
		c.RelationLR = c.LR
	}
	if c.NegAlpha == 0 {
		c.NegAlpha = 0.5
	}
	if c.BatchSize == 0 {
		c.BatchSize = 1000
	}
	if c.ChunkSize == 0 {
		c.ChunkSize = 50
	}
	if c.UniformNegs == 0 {
		c.UniformNegs = 50
	}
	if c.Epochs == 0 {
		c.Epochs = 5
	}
	if c.Workers == 0 {
		c.Workers = 1
	}
	if c.BucketOrder == "" {
		c.BucketOrder = partition.OrderInsideOut
	}
	if c.StratumParts == 0 {
		c.StratumParts = 1
	}
	if c.InitScale == 0 {
		c.InitScale = 1
	}
	return c
}

// EpochStats summarises one epoch.
type EpochStats struct {
	Epoch         int
	Loss          float64
	Edges         int
	Duration      time.Duration
	PartitionIO   int // partition loads (swap-ins) this epoch
	PeakResident  int64
	BucketsActive int
}

// Trainer owns the training state for one graph.
type Trainer struct {
	cfg     Config
	g       *graph.Graph
	store   storage.Store
	scorers []*model.Scorer // per relation
	// relParams[r] is the full parameter block (fwd|rev) for relation r.
	relParams [][]float32
	relOptFwd []*optim.DenseAdagrad
	relOptRev []*optim.DenseAdagrad
	relMu     []sync.Mutex
	samplers  *sampling.Set
	rowOpt    optim.RowAdagrad

	buckets []partition.Bucket
	ranges  []graph.BucketRange
	nSrc    int
	nDst    int
	edges   *graph.EdgeList // bucket-sorted copy of the training edges

	// Striped row locks for the non-HOGWILD mode.
	stripes []sync.Mutex

	root *rng.RNG

	epochsRun int
	peakBytes int64
}

// New prepares a trainer over the given training graph and store. The store
// decides the memory regime: MemStore keeps everything resident, DiskStore
// swaps partitions per §4.1.
func New(g *graph.Graph, store storage.Store, cfg Config) (*Trainer, error) {
	cfg = cfg.withDefaults()
	if cfg.Dim <= 0 {
		return nil, fmt.Errorf("train: Dim must be positive")
	}
	t := &Trainer{cfg: cfg, g: g, store: store, root: rng.New(cfg.Seed)}

	// Per-relation scorers (relations may use different operators).
	t.scorers = make([]*model.Scorer, len(g.Schema.Relations))
	t.relParams = make([][]float32, len(g.Schema.Relations))
	t.relOptFwd = make([]*optim.DenseAdagrad, len(g.Schema.Relations))
	t.relOptRev = make([]*optim.DenseAdagrad, len(g.Schema.Relations))
	t.relMu = make([]sync.Mutex, len(g.Schema.Relations))
	for r, rel := range g.Schema.Relations {
		sc, err := model.NewScorer(cfg.Dim, rel.Operator, cfg.Comparator, cfg.Loss, cfg.Margin, cfg.Reciprocal)
		if err != nil {
			return nil, fmt.Errorf("train: relation %q: %w", rel.Name, err)
		}
		t.scorers[r] = sc
		t.relParams[r] = make([]float32, sc.RelParamCount())
		sc.InitRelParams(t.relParams[r])
		half := sc.Op.ParamCount(cfg.Dim)
		t.relOptFwd[r] = optim.NewDenseAdagrad(cfg.RelationLR, half)
		if cfg.Reciprocal {
			t.relOptRev[r] = optim.NewDenseAdagrad(cfg.RelationLR, half)
		}
	}

	degrees := graph.ComputeDegrees(g)
	t.samplers = sampling.NewSet(g.Schema, degrees, cfg.NegAlpha)
	t.rowOpt = optim.NewRowAdagrad(cfg.LR)

	// Bucket-sort a copy of the edges.
	t.nSrc, t.nDst = bucketDims(g.Schema)
	t.edges = g.Edges.Clone()
	t.ranges = graph.SortByBucket(g.Schema, t.edges, t.nSrc, t.nDst)
	order, err := partition.Order(cfg.BucketOrder, t.nSrc, t.nDst, cfg.Seed)
	if err != nil {
		return nil, err
	}
	t.buckets = order

	t.stripes = make([]sync.Mutex, 1024)
	return t, nil
}

// bucketDims returns the bucket grid dimensions implied by the schema.
func bucketDims(s *graph.Schema) (nSrc, nDst int) {
	nSrc, nDst = 1, 1
	for _, r := range s.Relations {
		if p := s.Entity(r.SourceType).NumPartitions; p > nSrc {
			nSrc = p
		}
		if p := s.Entity(r.DestType).NumPartitions; p > nDst {
			nDst = p
		}
	}
	return nSrc, nDst
}

// Buckets exposes the training bucket order (for tests and the distributed
// lock server).
func (t *Trainer) Buckets() []partition.Bucket { return t.buckets }

// Schema returns the graph schema the trainer was built from.
func (t *Trainer) Schema() *graph.Schema { return t.g.Schema }

// PeakResidentBytes reports the largest model footprint held in memory so
// far (sampled while bucket shards are resident).
func (t *Trainer) PeakResidentBytes() int64 { return t.peakBytes }

// TrainBucket trains all edges of one bucket (one lock-server lease in
// distributed mode). Empty buckets return immediately.
func (t *Trainer) TrainBucket(b partition.Bucket) (loss float64, edges int, err error) {
	rg := t.ranges[b.Index(t.nDst)]
	if rg.Empty() {
		return 0, 0, nil
	}
	return t.trainBucket(b, rg.Lo, rg.Hi)
}

// BucketEdgeCount returns the number of training edges in bucket b.
func (t *Trainer) BucketEdgeCount(b partition.Bucket) int {
	return t.ranges[b.Index(t.nDst)].Len()
}

// BucketDims returns the (source, destination) partition grid size.
func (t *Trainer) BucketDims() (nSrc, nDst int) { return t.nSrc, t.nDst }

// WithRelParams runs f with relation r's parameter block while holding its
// update lock; used by the distributed parameter-sync thread to snapshot and
// overwrite parameters without racing the HOGWILD workers.
func (t *Trainer) WithRelParams(r int, f func(params []float32)) {
	t.relMu[r].Lock()
	defer t.relMu[r].Unlock()
	f(t.relParams[r])
}

// RelParams returns the live parameter block of relation r.
func (t *Trainer) RelParams(r int) []float32 { return t.relParams[r] }

// SetRelParams overwrites relation r's parameters (distributed sync).
func (t *Trainer) SetRelParams(r int, p []float32) { copy(t.relParams[r], p) }

// Scorer returns the scorer used for relation r.
func (t *Trainer) Scorer(r int) *model.Scorer { return t.scorers[r] }

// Store returns the backing embedding store.
func (t *Trainer) Store() storage.Store { return t.store }

// Config returns the effective (defaulted) configuration.
func (t *Trainer) Config() Config { return t.cfg }

// Train runs cfg.Epochs epochs and returns per-epoch stats. onEpoch, if
// non-nil, runs after each epoch (learning-curve recording).
func (t *Trainer) Train(onEpoch func(EpochStats)) ([]EpochStats, error) {
	var out []EpochStats
	for e := 0; e < t.cfg.Epochs; e++ {
		st, err := t.TrainEpoch()
		if err != nil {
			return out, err
		}
		out = append(out, st)
		if onEpoch != nil {
			onEpoch(st)
		}
	}
	return out, nil
}

// TrainEpoch runs one pass over all buckets.
func (t *Trainer) TrainEpoch() (EpochStats, error) {
	start := time.Now()
	stats := EpochStats{Epoch: t.epochsRun}
	held := map[int]bool{}
	for stratum := 0; stratum < t.cfg.StratumParts; stratum++ {
		for _, b := range t.buckets {
			rg := t.ranges[b.Index(t.nDst)]
			if rg.Empty() {
				continue
			}
			lo, hi := stratumSlice(rg, stratum, t.cfg.StratumParts)
			if hi <= lo {
				continue
			}
			// Count swap-ins the way SwapCount does: partitions not
			// currently held must be loaded.
			need := map[int]bool{}
			for _, p := range b.Parts() {
				need[p] = true
				if !held[p] {
					stats.PartitionIO++
				}
			}
			held = need
			loss, edges, err := t.trainBucket(b, lo, hi)
			if err != nil {
				return stats, err
			}
			stats.Loss += loss
			stats.Edges += edges
			stats.BucketsActive++
		}
	}
	t.epochsRun++
	stats.Duration = time.Since(start)
	stats.PeakResident = t.peakBytes
	return stats, nil
}

func stratumSlice(rg graph.BucketRange, k, n int) (lo, hi int) {
	size := rg.Len()
	lo = rg.Lo + k*size/n
	hi = rg.Lo + (k+1)*size/n
	return lo, hi
}

// shardRef resolves entity ids of one (type, partition) to rows of an
// acquired shard.
type shardRef struct {
	shard *storage.Shard
	ent   graph.EntityType
}

func (s shardRef) row(id int32) []float32 { return s.shard.Row(s.ent.LocalOffset(id)) }
func (s shardRef) acc(id int32) *float32  { return &s.shard.Acc[s.ent.LocalOffset(id)] }

type shardKey struct{ t, p int }

// acquireBucketShards loads every (entity type, partition) combination the
// bucket's relations can touch.
func (t *Trainer) acquireBucketShards(b partition.Bucket) (map[shardKey]shardRef, error) {
	out := map[shardKey]shardRef{}
	acquire := func(typeName string, part int) error {
		ti := t.g.Schema.EntityTypeIndex(typeName)
		ent := t.g.Schema.Entities[ti]
		if !ent.Partitioned() {
			part = 0
		}
		k := shardKey{ti, part}
		if _, ok := out[k]; ok {
			return nil
		}
		sh, err := t.store.Acquire(ti, part)
		if err != nil {
			return err
		}
		out[k] = shardRef{shard: sh, ent: ent}
		return nil
	}
	for _, rel := range t.g.Schema.Relations {
		if err := acquire(rel.SourceType, b.P1); err != nil {
			return nil, err
		}
		if err := acquire(rel.DestType, b.P2); err != nil {
			return nil, err
		}
	}
	return out, nil
}

func (t *Trainer) releaseBucketShards(m map[shardKey]shardRef) error {
	var first error
	for k := range m {
		if err := t.store.Release(k.t, k.p); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// trainBucket trains edges [lo, hi) of the bucket-sorted edge list, which
// all belong to bucket b.
func (t *Trainer) trainBucket(b partition.Bucket, lo, hi int) (loss float64, edges int, err error) {
	shards, err := t.acquireBucketShards(b)
	if err != nil {
		return 0, 0, err
	}
	// Release errors must surface: with a distributed store, Release is the
	// write-back that publishes this bucket's updates, and dropping its
	// failure would mark the bucket done while its training is lost.
	defer func() {
		if rerr := t.releaseBucketShards(shards); rerr != nil && err == nil {
			loss, edges, err = 0, 0, rerr
		}
	}()
	// Sample peak model memory while the bucket's shards are resident (the
	// Tables 3–4 memory column).
	if rb := t.store.ResidentBytes(); rb > t.peakBytes {
		t.peakBytes = rb
	}

	n := hi - lo
	perm := make([]int, n)
	t.root.Perm(perm)

	workers := t.cfg.Workers
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	losses := make([]float64, workers)
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int, r *rng.RNG) {
			defer wg.Done()
			wlo := w * n / workers
			whi := (w + 1) * n / workers
			losses[w], errs[w] = t.workerLoop(b, shards, perm[wlo:whi], lo, r)
		}(w, t.root.Split())
	}
	wg.Wait()
	for w := 0; w < workers; w++ {
		if errs[w] != nil {
			return 0, 0, errs[w]
		}
		loss += losses[w]
	}
	return loss, n, nil
}

// workerLoop is one HOGWILD worker: it groups its edge indices by relation
// (batches share a relation, §4.3 last paragraph) and processes chunks.
func (t *Trainer) workerLoop(b partition.Bucket, shards map[shardKey]shardRef, idx []int, base int, r *rng.RNG) (float64, error) {
	c := t.cfg.ChunkSize
	u := t.cfg.UniformNegs
	d := t.cfg.Dim

	byRel := map[int32][]int{}
	for _, i := range idx {
		rel := t.edges.Rels[base+i]
		byRel[rel] = append(byRel[rel], base+i)
	}

	in := &model.ChunkInput{}
	inBuf := model.ChunkInput{
		SrcIDs: make([]int32, c), DstIDs: make([]int32, c),
		USrcIDs: make([]int32, u), UDstIDs: make([]int32, u),
	}
	srcBuf := make([]float32, c*d)
	dstBuf := make([]float32, c*d)
	usrcBuf := make([]float32, u*d)
	udstBuf := make([]float32, u*d)

	var total float64
	var ws *model.Workspace
	for rel, list := range byRel {
		sc := t.scorers[rel]
		if ws == nil {
			// Workspace shape depends only on (chunk, negatives, dim), so it
			// is shared across relations; gradient buffers are per relation
			// because operator parameter counts differ.
			ws = sc.NewWorkspace(c, u)
		}
		grad := sc.NewChunkGrad(c, u)
		relCfg := t.g.Schema.Relations[rel]
		srcType := t.g.Schema.EntityTypeIndex(relCfg.SourceType)
		dstType := t.g.Schema.EntityTypeIndex(relCfg.DestType)
		srcRef := t.lookupRef(shards, srcType, b.P1)
		dstRef := t.lookupRef(shards, dstType, b.P2)
		srcSmp := t.samplers.ForRelationSource(rel, b.P1)
		dstSmp := t.samplers.ForRelationDest(rel, b.P2)
		fwd, rev := sc.SplitRelParams(t.relParams[rel])

		for chunkLo := 0; chunkLo < len(list); chunkLo += c {
			chunkHi := chunkLo + c
			if chunkHi > len(list) {
				chunkHi = len(list)
			}
			cc := chunkHi - chunkLo
			// Gather.
			in.SrcIDs = inBuf.SrcIDs[:cc]
			in.DstIDs = inBuf.DstIDs[:cc]
			in.USrcIDs = inBuf.USrcIDs[:u]
			in.UDstIDs = inBuf.UDstIDs[:u]
			for k, ei := range list[chunkLo:chunkHi] {
				in.SrcIDs[k] = t.edges.Srcs[ei]
				in.DstIDs[k] = t.edges.Dsts[ei]
			}
			sampling.SampleMany(srcSmp, r, in.USrcIDs)
			sampling.SampleMany(dstSmp, r, in.UDstIDs)
			in.Src = gather(srcBuf, srcRef, in.SrcIDs, d)
			in.Dst = gather(dstBuf, dstRef, in.DstIDs, d)
			in.USrc = gather(usrcBuf, srcRef, in.USrcIDs, d)
			in.UDst = gather(udstBuf, dstRef, in.UDstIDs, d)
			in.RelWeight = relCfg.EffectiveWeight()
			in.RelFwd = fwd
			in.RelRev = rev

			sc.ScoreChunk(ws, in, grad)
			total += grad.Loss

			// Scatter updates.
			t.applyRows(srcRef, in.SrcIDs, grad.Src.Data, d)
			t.applyRows(dstRef, in.DstIDs, grad.Dst.Data, d)
			t.applyRows(srcRef, in.USrcIDs, grad.USrc.Data, d)
			t.applyRows(dstRef, in.UDstIDs, grad.UDst.Data, d)
			if len(grad.RelFwd) > 0 {
				t.relMu[rel].Lock()
				t.relOptFwd[rel].Update(fwd, grad.RelFwd)
				if rev != nil {
					t.relOptRev[rel].Update(rev, grad.RelRev)
				}
				t.relMu[rel].Unlock()
			}
		}
	}
	return total, nil
}

func (t *Trainer) lookupRef(shards map[shardKey]shardRef, typeIdx, part int) shardRef {
	if !t.g.Schema.Entities[typeIdx].Partitioned() {
		part = 0
	}
	ref, ok := shards[shardKey{typeIdx, part}]
	if !ok {
		panic(fmt.Sprintf("train: shard (%d,%d) not acquired", typeIdx, part))
	}
	return ref
}

// gather copies the embedding rows of ids into a matrix backed by buf.
func gather(buf []float32, ref shardRef, ids []int32, d int) vec.Matrix {
	m := vec.MatrixFrom(buf[:len(ids)*d], len(ids), d)
	for k, id := range ids {
		copy(m.Row(k), ref.row(id))
	}
	return m
}

// applyRows applies per-row Adagrad updates for the gathered gradient block.
func (t *Trainer) applyRows(ref shardRef, ids []int32, grads []float32, d int) {
	for k, id := range ids {
		g := grads[k*d : (k+1)*d]
		if t.cfg.HogwildOff {
			mu := &t.stripes[rowStripe(ref.shard.TypeIndex, id)]
			mu.Lock()
			t.rowOpt.Update(ref.row(id), g, ref.acc(id))
			mu.Unlock()
		} else {
			// HOGWILD: benign races on float32 rows, as in the paper.
			t.rowOpt.Update(ref.row(id), g, ref.acc(id))
		}
	}
}

func rowStripe(typeIdx int, id int32) int {
	h := uint32(typeIdx)*2654435761 + uint32(id)*2246822519
	return int(h % 1024)
}
