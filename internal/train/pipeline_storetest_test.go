package train

// The pipelined executor's behavioural tests run on the storetest harness:
// an instrumented, deterministic store (event log, refcount ledger, channel
// gates, scripted errors) over a MemStore, so prefetch ordering, shard
// retention, abort cleanup, and I/O–compute overlap are pinned without real
// disk timing or wall-clock sleeps.

import (
	"errors"
	"testing"

	"pbg/internal/storage"
	"pbg/internal/storage/storetest"
)

func harnessTrainer(t *testing.T, parts int, cfg Config) (*Trainer, *storetest.Store) {
	t.Helper()
	g := smallSocial(t, parts)
	if cfg.Dim == 0 {
		cfg.Dim = 16
	}
	st := storetest.New(storage.NewMemStore(g.Schema, cfg.Dim, 7, 1))
	tr, err := New(g, st, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return tr, st
}

// itemKeys lists each epoch item's shard keys as storetest keys.
func itemKeys(tr *Trainer) [][]storetest.Key {
	var out [][]storetest.Key
	for _, it := range tr.epochItems() {
		var ks []storetest.Key
		for _, k := range tr.bucketShardKeys(it.b) {
			ks = append(ks, storetest.Key{Type: k.t, Part: k.p})
		}
		out = append(out, ks)
	}
	return out
}

// TestPipelinePrefetchesBeforeAcquire pins the executor's hint discipline:
// every shard it acquires was hinted via Prefetch earlier in the event log
// (the store gets the chance to overlap every load), and with lookahead L
// the keys of the first L successor items are hinted while item 0 still
// trains — before the first Release of the epoch.
func TestPipelinePrefetchesBeforeAcquire(t *testing.T) {
	tr, st := harnessTrainer(t, 4, Config{Epochs: 1, Seed: 3, Lookahead: 2, MaxLookahead: 2})
	if _, err := tr.TrainEpoch(); err != nil {
		t.Fatal(err)
	}
	events := st.Events()
	firstRelease := -1
	for i, e := range events {
		if e.Kind == storetest.KindRelease {
			firstRelease = i
			break
		}
	}
	if firstRelease < 0 {
		t.Fatal("epoch released nothing")
	}
	seenAcquire := map[storetest.Key]bool{}
	for _, e := range events {
		if e.Kind == storetest.KindAcquire && !seenAcquire[e.Key] {
			seenAcquire[e.Key] = true
			if p := st.FirstIndex(storetest.KindPrefetch, e.Key); p < 0 || p > st.FirstIndex(storetest.KindAcquire, e.Key) {
				t.Fatalf("shard %+v acquired without a preceding prefetch hint", e.Key)
			}
		}
	}
	// Lookahead 2: items 1 and 2 are hinted during item 0, i.e. before the
	// first release of the epoch.
	items := itemKeys(tr)
	for i := 1; i <= 2 && i < len(items); i++ {
		for _, k := range items[i] {
			if p := st.FirstIndex(storetest.KindPrefetch, k); p < 0 || p > firstRelease {
				t.Fatalf("item %d shard %+v not hinted during item 0 (prefetch idx %d, first release %d)",
					i, k, p, firstRelease)
			}
		}
	}
	if err := st.LeakCheck(); err != nil {
		t.Fatal(err)
	}
}

// TestPipelineHoldsSharedShards pins acquire-before-release retention:
// shards shared by consecutive buckets keep their reference across the
// transition, so the acquire count equals exactly the number of (item,
// newly-needed shard) pairs — and every acquire is balanced by an evict.
func TestPipelineHoldsSharedShards(t *testing.T) {
	tr, st := harnessTrainer(t, 4, Config{Epochs: 1, Seed: 3})
	if _, err := tr.TrainEpoch(); err != nil {
		t.Fatal(err)
	}
	items := itemKeys(tr)
	expected := 0
	held := map[storetest.Key]bool{}
	for _, ks := range items {
		need := map[storetest.Key]bool{}
		for _, k := range ks {
			need[k] = true
			if !held[k] {
				expected++
			}
		}
		held = need
	}
	var acquired, evicted int
	for _, e := range st.Events() {
		switch e.Kind {
		case storetest.KindAcquired:
			acquired++
		case storetest.KindEvict:
			evicted++
		}
	}
	if acquired != expected {
		t.Fatalf("acquired %d shards, want %d (shared shards must stay held across transitions)", acquired, expected)
	}
	if evicted != acquired {
		t.Fatalf("evicted %d != acquired %d (unbalanced shard lifetimes)", evicted, acquired)
	}
	if err := st.LeakCheck(); err != nil {
		t.Fatal(err)
	}
}

// midEpochKey returns a shard key first needed by an item index ≥ 2, so a
// scripted failure (or gate) on it hits the executor mid-epoch, after
// lookahead hints are in flight.
func midEpochKey(t *testing.T, tr *Trainer) storetest.Key {
	t.Helper()
	first := map[storetest.Key]int{}
	for i, ks := range itemKeys(tr) {
		for _, k := range ks {
			if _, ok := first[k]; !ok {
				first[k] = i
			}
		}
	}
	for k, i := range first {
		if i >= 2 {
			return k
		}
	}
	t.Fatal("no shard first needed mid-epoch; enlarge the partition grid")
	return storetest.Key{}
}

// TestPipelineAbortReleasesEverything pins the abort path: a shard load
// failing mid-epoch must surface from TrainEpoch, and every held shard and
// in-flight lookahead hint must be released/discarded — no reference leaks,
// no pending loads.
func TestPipelineAbortReleasesEverything(t *testing.T) {
	tr, st := harnessTrainer(t, 4, Config{Epochs: 1, Seed: 3, Lookahead: 2, MaxLookahead: 2})
	boom := errors.New("scripted load failure")
	k := midEpochKey(t, tr)
	st.FailAcquire(k.Type, k.Part, boom)
	if _, err := tr.TrainEpoch(); !errors.Is(err, boom) {
		t.Fatalf("scripted failure not surfaced: %v", err)
	}
	if err := st.LeakCheck(); err != nil {
		t.Fatal(err)
	}
	if n := st.Outstanding(); n != 0 {
		t.Fatalf("%d references leaked through the abort path", n)
	}
	if n := st.PendingLoads(); n != 0 {
		t.Fatalf("%d emulated loads left pending after abort", n)
	}
	// The trainer remains usable: the next epoch runs clean.
	if _, err := tr.TrainEpoch(); err != nil {
		t.Fatal(err)
	}
	if err := st.LeakCheck(); err != nil {
		t.Fatal(err)
	}
}

// TestPipelineGatedLoadOverlapsTraining drives the executor against a
// deterministically slow shard: the load of a mid-epoch shard is held by a
// gate, the gate's Started handshake proves the prefetch was issued while
// earlier buckets still train, and opening the gate lets the epoch finish.
// No wall-clock timing anywhere.
func TestPipelineGatedLoadOverlapsTraining(t *testing.T) {
	tr, st := harnessTrainer(t, 4, Config{Epochs: 1, Seed: 3, Lookahead: 2, MaxLookahead: 2})
	k := midEpochKey(t, tr)
	gate := st.GateLoad(k.Type, k.Part)
	done := make(chan error, 1)
	go func() {
		_, err := tr.TrainEpoch()
		done <- err
	}()
	<-gate.Started() // the hinted load is in flight and stalled
	select {
	case err := <-done:
		t.Fatalf("epoch finished while a needed shard load was gated (err=%v)", err)
	default:
	}
	gate.Open()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if p, a := st.FirstIndex(storetest.KindPrefetch, k), st.FirstIndex(storetest.KindAcquire, k); p < 0 || p > a {
		t.Fatalf("gated shard was not hinted ahead of its acquire (prefetch %d, acquire %d)", p, a)
	}
	if err := st.LeakCheck(); err != nil {
		t.Fatal(err)
	}
}

// TestPipelineMatchesSerialLossOnHarness ports the loss-parity pin to the
// harness: the pipelined executor over the instrumented store produces
// bit-identical per-epoch losses to the serial baseline (shard lifetimes
// change, the math must not), with zero real I/O.
func TestPipelineMatchesSerialLossOnHarness(t *testing.T) {
	run := func(off bool) ([]EpochStats, *storetest.Store) {
		tr, st := harnessTrainer(t, 4, Config{Epochs: 2, Seed: 3, PipelineOff: off})
		stats, err := tr.Train(nil)
		if err != nil {
			t.Fatal(err)
		}
		return stats, st
	}
	pipe, pst := run(false)
	serial, sst := run(true)
	for e := range pipe {
		if pipe[e].Loss != serial[e].Loss || pipe[e].Edges != serial[e].Edges {
			t.Fatalf("epoch %d diverged: pipeline (%v, %d) vs serial (%v, %d)",
				e, pipe[e].Loss, pipe[e].Edges, serial[e].Loss, serial[e].Edges)
		}
	}
	if err := pst.LeakCheck(); err != nil {
		t.Fatal(err)
	}
	if err := sst.LeakCheck(); err != nil {
		t.Fatal(err)
	}
	// The serial baseline must not issue hints; the pipeline must.
	if n := len(sst.Events()); n > 0 {
		for _, e := range sst.Events() {
			if e.Kind == storetest.KindPrefetch {
				t.Fatal("serial executor issued prefetch hints")
			}
		}
	}
	hinted := false
	for _, e := range pst.Events() {
		if e.Kind == storetest.KindPrefetch {
			hinted = true
			break
		}
	}
	if !hinted {
		t.Fatal("pipelined executor issued no prefetch hints")
	}
}
