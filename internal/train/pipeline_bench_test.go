package train

import (
	"fmt"
	"testing"
	"time"

	"pbg/internal/datagen"
	"pbg/internal/obs"
	"pbg/internal/partition"
	"pbg/internal/storage"
)

// BenchmarkEpochPipeline measures epoch throughput (edges/s), the IOWait
// share, the resident high-water, and the store's forced evictions on a
// multi-partition DiskStore in four modes: the pipelined executor with an
// unbounded budget ("on"), the serial baseline ("off"), the adaptive
// controller under a budget that admits roughly two buckets of shards
// ("budget") — the configuration the memory-budget acceptance numbers come
// from — and that same budget with the budget-aware bucket ordering
// ("budget_order"), which must cut forcedEvicts versus "budget" at
// identical MemBudgetBytes. The graph is sized so shard I/O is a visible
// fraction of epoch time: many nodes (big shards to serialise) over
// comparatively few edges.
func BenchmarkEpochPipeline(b *testing.B) {
	nodes, degree, dim := 24_000, 3, 64
	if testing.Short() {
		nodes, degree, dim = 4_000, 2, 16
	}
	const parts = 8
	perShard := int64((nodes+parts-1)/parts) * int64(dim+1) * 4
	for _, mode := range []string{"on", "off", "budget", "budget_order"} {
		b.Run(fmt.Sprintf("pipeline=%s", mode), func(b *testing.B) {
			g, err := datagen.Social(datagen.SocialConfig{
				Nodes: nodes, AvgOutDegree: degree, NumPartitions: parts, Seed: 11,
			})
			if err != nil {
				b.Fatal(err)
			}
			store, err := storage.NewDiskStore(b.TempDir(), g.Schema, dim, 7, 1)
			if err != nil {
				b.Fatal(err)
			}
			defer store.Close()
			cfg := Config{
				Dim: dim, Seed: 3, Workers: 2, UniformNegs: 10, ChunkSize: 10,
			}
			switch mode {
			case "off":
				cfg.PipelineOff = true
			case "budget":
				// ~2 buckets of shards (4 shards) plus the in-flight
				// allowance; the controller starts at lookahead 1 and may
				// widen to 3 if the projection fits.
				cfg.MemBudgetBytes = 5 * perShard
				cfg.Lookahead, cfg.MaxLookahead = 1, 3
			case "budget_order":
				// Same budget, but the bucket sequence is optimized against
				// the 4-slot buffer it affords.
				cfg.MemBudgetBytes = 5 * perShard
				cfg.Lookahead, cfg.MaxLookahead = 1, 3
				cfg.BucketOrder = partition.OrderBudgetAware
			}
			tr, err := New(g, store, cfg)
			if err != nil {
				b.Fatal(err)
			}
			var edges int
			var ioWait, total float64
			var highWater int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				st, err := tr.TrainEpoch()
				if err != nil {
					b.Fatal(err)
				}
				edges += st.Edges
				ioWait += st.IOWait.Seconds()
				total += st.Duration.Seconds()
				if st.ResidentHighWater > highWater {
					highWater = st.ResidentHighWater
				}
			}
			b.StopTimer()
			if total > 0 {
				b.ReportMetric(float64(edges)/total, "edges/s")
				b.ReportMetric(100*ioWait/total, "iowait%")
				b.ReportMetric(float64(highWater)/(1<<20), "residentMB")
				b.ReportMetric(float64(store.IOStats().ForcedEvicts)/float64(b.N), "forcedEvicts")
			}
			if (mode == "budget" || mode == "budget_order") && highWater > cfg.MemBudgetBytes+perShard {
				b.Fatalf("resident high-water %d exceeded budget %d + allowance", highWater, cfg.MemBudgetBytes)
			}
		})
	}
}

// BenchmarkEpochPipelineObs prices the observability layer: the same
// pipeline shape as BenchmarkEpochPipeline run with a full obs.Hub
// (registry + tracer) against the quiet default. The two trainers run
// interleaved epochs with the lead alternating each iteration, so disk
// cache warm-up and CPU frequency drift hit both sides equally. It reports
// the measured overhead and — outside -short, where one warm iteration is
// too noisy to judge — fails if instrumentation costs more than ~2% of
// epoch wall time, the budget the metric-handle caching and per-worker
// local accumulation exist to protect.
func BenchmarkEpochPipelineObs(b *testing.B) {
	nodes, degree, dim := 24_000, 3, 64
	if testing.Short() {
		nodes, degree, dim = 4_000, 2, 16
	}
	const parts = 8
	g, err := datagen.Social(datagen.SocialConfig{
		Nodes: nodes, AvgOutDegree: degree, NumPartitions: parts, Seed: 11,
	})
	if err != nil {
		b.Fatal(err)
	}
	build := func(hub *obs.Hub) *Trainer {
		store, err := storage.NewDiskStore(b.TempDir(), g.Schema, dim, 7, 1)
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { _ = store.Close() })
		tr, err := New(g, store, Config{
			Dim: dim, Seed: 3, Workers: 2, UniformNegs: 10, ChunkSize: 10,
			Obs: hub,
		})
		if err != nil {
			b.Fatal(err)
		}
		return tr
	}
	trOn := build(obs.NewHub())
	trOff := build(nil)
	epoch := func(tr *Trainer) time.Duration {
		start := time.Now()
		if _, err := tr.TrainEpoch(); err != nil {
			b.Fatal(err)
		}
		return time.Since(start)
	}
	// One untimed warm-up epoch each: first-touch shard creation is I/O
	// noise, not instrumentation cost.
	epoch(trOn)
	epoch(trOff)
	var onNs, offNs time.Duration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%2 == 0 {
			offNs += epoch(trOff)
			onNs += epoch(trOn)
		} else {
			onNs += epoch(trOn)
			offNs += epoch(trOff)
		}
	}
	b.StopTimer()
	if offNs <= 0 {
		return
	}
	overhead := float64(onNs-offNs) / float64(offNs)
	b.ReportMetric(100*overhead, "obs-overhead-%")
	// Enforce only on the full-size shape with enough accumulated wall time
	// for a 2% signal to clear scheduler jitter.
	if !testing.Short() && offNs > 500*time.Millisecond && overhead > 0.02 {
		b.Fatalf("observability overhead %.1f%% (on %v vs off %v over %d epochs); budget is 2%%",
			100*overhead, onNs, offNs, b.N)
	}
}

// BenchmarkEpochPipelineLargeP is the large-grid shape of the pipeline
// benchmark: many partitions (the regime where the closed-form grouped
// ordering replaces the greedy search) under a budget admitting roughly 8
// partition slots. It reports ordering wall time alongside throughput and
// the store's forced evictions, and fails if building the budget_aware
// order falls back into seconds — the regression the closed forms exist to
// prevent.
func BenchmarkEpochPipelineLargeP(b *testing.B) {
	parts := 64
	if testing.Short() {
		parts = 32
	}
	nodes, dim := parts*150, 16
	perShard := int64((nodes+parts-1)/parts) * int64(dim+1) * 4
	for _, ord := range []string{partition.OrderInsideOut, partition.OrderBudgetAware} {
		b.Run(fmt.Sprintf("P=%d/order=%s", parts, ord), func(b *testing.B) {
			g, err := datagen.Social(datagen.SocialConfig{
				Nodes: nodes, AvgOutDegree: 2, NumPartitions: parts, Seed: 11,
			})
			if err != nil {
				b.Fatal(err)
			}
			store, err := storage.NewDiskStore(b.TempDir(), g.Schema, dim, 7, 1)
			if err != nil {
				b.Fatal(err)
			}
			defer store.Close()
			cfg := Config{
				Dim: dim, Seed: 3, Workers: 2, UniformNegs: 5, ChunkSize: 10,
				BucketOrder: ord, MemBudgetBytes: 9 * perShard,
				Lookahead: 1, MaxLookahead: 1,
			}
			orderStart := time.Now()
			tr, err := New(g, store, cfg)
			orderMS := float64(time.Since(orderStart).Microseconds()) / 1000
			if err != nil {
				b.Fatal(err)
			}
			if ord == partition.OrderBudgetAware && orderMS > 1000 {
				b.Fatalf("budget_aware ordering at P=%d took %.0fms (trainer construction); want milliseconds", parts, orderMS)
			}
			projected := partition.SwapCostUnderBuffer(tr.Buckets(), tr.BufferSlots())
			var edges int
			var total float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				st, err := tr.TrainEpoch()
				if err != nil {
					b.Fatal(err)
				}
				edges += st.Edges
				total += st.Duration.Seconds()
			}
			b.StopTimer()
			if total > 0 {
				b.ReportMetric(float64(edges)/total, "edges/s")
				b.ReportMetric(float64(store.IOStats().ForcedEvicts)/float64(b.N), "forcedEvicts")
			}
			b.ReportMetric(orderMS, "orderMs")
			b.ReportMetric(float64(projected), "projLoads")
		})
	}
}
