package train

import (
	"fmt"
	"testing"

	"pbg/internal/datagen"
	"pbg/internal/storage"
)

// BenchmarkEpochPipeline measures epoch throughput (edges/s) and the IOWait
// share on a multi-partition DiskStore with the pipelined executor on and
// off. The graph is sized so shard I/O is a visible fraction of epoch time:
// many nodes (big shards to serialise) over comparatively few edges.
func BenchmarkEpochPipeline(b *testing.B) {
	nodes, degree, dim := 24_000, 3, 64
	if testing.Short() {
		nodes, degree, dim = 4_000, 2, 16
	}
	for _, off := range []bool{false, true} {
		name := "on"
		if off {
			name = "off"
		}
		b.Run(fmt.Sprintf("pipeline=%s", name), func(b *testing.B) {
			g, err := datagen.Social(datagen.SocialConfig{
				Nodes: nodes, AvgOutDegree: degree, NumPartitions: 8, Seed: 11,
			})
			if err != nil {
				b.Fatal(err)
			}
			store, err := storage.NewDiskStore(b.TempDir(), g.Schema, dim, 7, 1)
			if err != nil {
				b.Fatal(err)
			}
			defer store.Close()
			tr, err := New(g, store, Config{
				Dim: dim, Seed: 3, Workers: 2, UniformNegs: 10, ChunkSize: 10,
				PipelineOff: off,
			})
			if err != nil {
				b.Fatal(err)
			}
			var edges int
			var ioWait, total float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				st, err := tr.TrainEpoch()
				if err != nil {
					b.Fatal(err)
				}
				edges += st.Edges
				ioWait += st.IOWait.Seconds()
				total += st.Duration.Seconds()
			}
			b.StopTimer()
			if total > 0 {
				b.ReportMetric(float64(edges)/total, "edges/s")
				b.ReportMetric(100*ioWait/total, "iowait%")
			}
		})
	}
}
