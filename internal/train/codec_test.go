package train

import (
	"math"
	"testing"

	"pbg/internal/storage"
)

// TestCodecWidensBudgetWindow pins the cost-model contract of the quantized
// codec: every budget consumer prices shards through the codec, so the same
// -mem-budget affords a wider window when shards shrink. No knob other than
// Config.Codec changes between the compared runs.
func TestCodecWidensBudgetWindow(t *testing.T) {
	g := smallSocial(t, 4)
	dim := 16

	// Slot pricing: budget_aware planning must see more resident partition
	// slots per byte under a smaller codec.
	budget := 6 * storage.ProjectedShardBytes(g.Schema, dim, 0, 0)
	fp32Slots := BufferSlotsFor(g.Schema, dim, budget, storage.CodecFP32)
	int8Slots := BufferSlotsFor(g.Schema, dim, budget, storage.CodecInt8)
	fp16Slots := BufferSlotsFor(g.Schema, dim, budget, storage.CodecFP16)
	if int8Slots <= fp32Slots {
		t.Fatalf("int8 slots %d not wider than fp32 slots %d at budget %d", int8Slots, fp32Slots, budget)
	}
	if fp16Slots <= fp32Slots {
		t.Fatalf("fp16 slots %d not wider than fp32 slots %d at budget %d", fp16Slots, fp32Slots, budget)
	}

	// Lookahead clamping: a budget that forces an fp32 run to lookahead 0
	// (one bucket's working set plus the in-flight allowance, the
	// TestControllerInitClampsToTightBudget construction) still affords
	// pipelined prefetch once the same shards are priced int8.
	probe := controllerTrainer(t, Config{Dim: dim})
	tight := probe.windowBytes(0) + probe.maxShardBytes()
	fp32Tr := controllerTrainer(t, Config{Dim: dim, Lookahead: 3, MaxLookahead: 4, MemBudgetBytes: tight})
	int8Tr := controllerTrainer(t, Config{Dim: dim, Lookahead: 3, MaxLookahead: 4, MemBudgetBytes: tight, Codec: "int8"})
	if fp32Tr.Lookahead() != 0 {
		t.Fatalf("fp32 lookahead %d under one-bucket budget, want 0", fp32Tr.Lookahead())
	}
	if int8Tr.Lookahead() <= fp32Tr.Lookahead() {
		t.Fatalf("int8 lookahead %d not wider than fp32's %d at the same budget %d",
			int8Tr.Lookahead(), fp32Tr.Lookahead(), tight)
	}

	// The controller's per-shard pricing itself must shrink with the codec.
	fp32Shard := fp32Tr.shardKeyBytes(shardKey{0, 0})
	int8Shard := int8Tr.shardKeyBytes(shardKey{0, 0})
	if int8Shard*2 > fp32Shard {
		t.Fatalf("int8 shard priced %d, want ≥2x under fp32's %d", int8Shard, fp32Shard)
	}
}

// TestTrainerSetsStoreCodec checks New plumbs Config.Codec into a store that
// supports it (DiskStore) and silently skips one that does not (MemStore —
// the codec still takes effect when Model.Checkpoint writes a DiskStore).
func TestTrainerSetsStoreCodec(t *testing.T) {
	g := smallSocial(t, 4)
	ds, err := storage.NewDiskStore(t.TempDir(), g.Schema, 16, 7, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	tr, err := New(g, ds, Config{Dim: 16, Codec: "fp16"})
	if err != nil {
		t.Fatal(err)
	}
	if ds.Codec() != storage.CodecFP16 {
		t.Fatalf("DiskStore codec %v after New, want fp16", ds.Codec())
	}
	if tr.Codec() != storage.CodecFP16 {
		t.Fatalf("Trainer codec %v, want fp16", tr.Codec())
	}

	ms := storage.NewMemStore(g.Schema, 16, 7, 1)
	tr, err = New(g, ms, Config{Dim: 16, Codec: "int8"})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Codec() != storage.CodecInt8 {
		t.Fatalf("MemStore trainer codec %v, want int8", tr.Codec())
	}

	if _, err := New(g, ms, Config{Dim: 16, Codec: "bf16"}); err == nil {
		t.Fatal("New accepted unknown codec bf16")
	}
}

// TestPipelineQuantizedLossParityWithSerial drives write-back→reload through
// the int8 codec under a budget tight enough to force mid-epoch eviction, in
// both the serial and pipelined executors. Quantization error enters only at
// evict+reload (resident shards stay fp32), and which reloads observe
// quantized bytes depends on asynchronous write-back timing — harmless under
// fp32 (reload is lossless, the fp32 parity tests pin bit-equality) but
// run-to-run visible here even serially. So the pin is parity bands, not
// bit-equality: repeated serial runs agree tightly, pipeline agrees with
// serial, the loss still descends, and the checkpoint on disk is genuinely
// v2/int8.
func TestPipelineQuantizedLossParityWithSerial(t *testing.T) {
	probeG := smallSocial(t, 4)
	probe, err := New(probeG, storage.NewMemStore(probeG.Schema, 16, 7, 1), Config{Dim: 16, Codec: "int8"})
	if err != nil {
		t.Fatal(err)
	}
	// One bucket's int8-priced working set plus the allowance: every bucket
	// swap must evict, so reloads observe quantized bytes all epoch.
	budget := probe.windowBytes(0) + probe.maxShardBytes()

	run := func(off bool) ([]EpochStats, string) {
		g := smallSocial(t, 4)
		dir := t.TempDir()
		store, err := storage.NewDiskStore(dir, g.Schema, 16, 7, 1)
		if err != nil {
			t.Fatal(err)
		}
		defer store.Close()
		tr, err := New(g, store, Config{
			Dim: 16, Epochs: 3, Seed: 3, PipelineOff: off,
			MemBudgetBytes: budget, Codec: "int8",
		})
		if err != nil {
			t.Fatal(err)
		}
		stats, err := tr.Train(nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := store.Close(); err != nil {
			t.Fatal(err)
		}
		return stats, dir
	}

	pipe, pipeDir := run(false)
	serial, _ := run(true)
	serial2, _ := run(true)

	for e := range serial {
		if diff := math.Abs(serial[e].Loss-serial2[e].Loss) / serial2[e].Loss; diff > 0.02 {
			t.Fatalf("epoch %d: repeated quantized serial runs diverged: %v vs %v (%.2f%% > 2%%)",
				e, serial[e].Loss, serial2[e].Loss, diff*100)
		}
	}
	for _, stats := range [][]EpochStats{pipe, serial} {
		first := stats[0].Loss / float64(stats[0].Edges)
		last := stats[len(stats)-1].Loss / float64(stats[len(stats)-1].Edges)
		if last >= first*0.9 {
			t.Fatalf("quantized loss did not decrease: %v → %v", first, last)
		}
		if stats[len(stats)-1].PartitionIO == 0 {
			t.Fatal("tight budget run reported zero partition loads — eviction never exercised the codec")
		}
	}
	pLast := pipe[len(pipe)-1].Loss / float64(pipe[len(pipe)-1].Edges)
	sLast := serial[len(serial)-1].Loss / float64(serial[len(serial)-1].Edges)
	if diff := math.Abs(pLast-sLast) / sLast; diff > 0.10 {
		t.Fatalf("pipelined int8 loss %v diverged from serial %v (%.1f%% > 10%%)", pLast, sLast, diff*100)
	}

	// The written checkpoint must actually be the quantized format.
	_, codec, err := storage.ReadShardCodec(storage.ShardPath(pipeDir, 0, 0))
	if err != nil {
		t.Fatal(err)
	}
	if codec != storage.CodecInt8 {
		t.Fatalf("checkpoint shard codec %v, want int8", codec)
	}
}
