package train

import (
	"testing"

	"pbg/internal/datagen"
	"pbg/internal/partition"
	"pbg/internal/storage"
)

// orderTestTrainer builds a trainer over an 8-partition social graph with
// the given order and budget (0 = unbudgeted), against a MemStore (these
// tests exercise order construction, not I/O).
func orderTestTrainer(t *testing.T, order string, budgetShards int) *Trainer {
	t.Helper()
	const nodes, parts, dim = 4000, 8, 16
	g, err := datagen.Social(datagen.SocialConfig{
		Nodes: nodes, AvgOutDegree: 4, NumPartitions: parts, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Dim: dim, Seed: 3, BucketOrder: order, Epochs: 1}
	if budgetShards > 0 {
		cfg.MemBudgetBytes = int64(budgetShards) * storage.ProjectedShardBytes(g.Schema, dim, 0, 0)
	}
	tr, err := New(g, storage.NewMemStore(g.Schema, dim, 7, 1), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestBudgetAwareOrderUsesBudgetSlots(t *testing.T) {
	// Budget of 5 shards: one is the in-flight allowance, leaving 4 buffer
	// slots for the single partitioned entity type.
	tr := orderTestTrainer(t, partition.OrderBudgetAware, 5)
	if got := tr.BufferSlots(); got != 4 {
		t.Fatalf("BufferSlots = %d, want 4", got)
	}
	slots := tr.BufferSlots()
	io, _ := partition.Order(partition.OrderInsideOut, 8, 8, 0)
	ioCost := partition.SwapCostUnderBuffer(io, slots)
	baCost := partition.SwapCostUnderBuffer(tr.Buckets(), slots)
	t.Logf("slots=%d: inside_out %d loads, trainer order %d loads", slots, ioCost, baCost)
	if baCost >= ioCost {
		t.Fatalf("budget_aware trainer order costs %d loads, inside_out %d", baCost, ioCost)
	}
	if !partition.CheckInvariant(tr.Buckets()) {
		t.Fatal("trainer order violates the initialisation invariant")
	}
}

func TestBudgetAwareOrderDegradesWithoutBudget(t *testing.T) {
	tr := orderTestTrainer(t, partition.OrderBudgetAware, 0)
	if got := tr.BufferSlots(); got != 0 {
		t.Fatalf("BufferSlots = %d without a budget, want 0", got)
	}
	io, _ := partition.Order(partition.OrderInsideOut, 8, 8, 0)
	for i, b := range tr.Buckets() {
		if b != io[i] {
			t.Fatalf("unbudgeted budget_aware order diverges from inside_out at %d: %v vs %v", i, b, io[i])
		}
	}
}

func TestBudgetAwareOrderTrains(t *testing.T) {
	tr := orderTestTrainer(t, partition.OrderBudgetAware, 5)
	st, err := tr.TrainEpoch()
	if err != nil {
		t.Fatal(err)
	}
	if st.Edges == 0 || st.Loss == 0 {
		t.Fatalf("epoch trained nothing: %+v", st)
	}
	// Every bucket of the 8×8 grid must still be visited exactly once.
	if len(tr.Buckets()) != 64 {
		t.Fatalf("order has %d buckets, want 64", len(tr.Buckets()))
	}
}
