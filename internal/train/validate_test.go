package train

import (
	"strings"
	"testing"
)

func TestValidateRunFlags(t *testing.T) {
	cases := []struct {
		name                 string
		order                string
		codec                string
		budget               int64
		slots, look, maxLook int
		wantErr              bool
		wantSubstr           string
	}{
		{name: "defaults", order: "", wantErr: false},
		{name: "plain order", order: "inside_out", wantErr: false},
		{name: "unknown order", order: "outside_in", wantErr: true, wantSubstr: "unknown -order"},
		{name: "fp16 codec", codec: "fp16", wantErr: false},
		{name: "int8 codec", codec: "int8", wantErr: false},
		{name: "unknown codec", codec: "bf16", wantErr: true, wantSubstr: "-codec"},
		{name: "budget_aware without budget", order: "budget_aware", wantErr: true, wantSubstr: "-mem-budget"},
		{name: "budget_aware with budget", order: "budget_aware", budget: 1 << 20, wantErr: false},
		{name: "budget_aware with slots", order: "budget_aware", slots: 4, wantErr: false},
		{name: "cap below lookahead", look: 3, maxLook: 2, wantErr: true, wantSubstr: "-max-lookahead"},
		{name: "cap equals lookahead", look: 2, maxLook: 2, wantErr: false},
		{name: "cap unset", look: 3, wantErr: false},
		{name: "negative budget", budget: -1, wantErr: true, wantSubstr: "-mem-budget"},
		{name: "negative lookahead", look: -1, wantErr: true, wantSubstr: "-lookahead"},
		{name: "negative cap", maxLook: -1, wantErr: true, wantSubstr: "-max-lookahead"},
		{name: "negative slots", slots: -1, wantErr: true, wantSubstr: "-buffer-slots"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := ValidateRunFlags(c.order, c.codec, c.budget, c.slots, c.look, c.maxLook)
			if (err != nil) != c.wantErr {
				t.Fatalf("ValidateRunFlags(%q, %q, %d, %d, %d, %d) = %v, wantErr %v",
					c.order, c.codec, c.budget, c.slots, c.look, c.maxLook, err, c.wantErr)
			}
			if err != nil && !strings.Contains(err.Error(), c.wantSubstr) {
				t.Fatalf("error %q does not mention %q", err, c.wantSubstr)
			}
		})
	}
}
