package train

import (
	"fmt"

	"pbg/internal/partition"
	"pbg/internal/storage"
)

// ValidateRunFlags sanity-checks the run-shaping flag combination shared by
// pbg-train and pbg-node before any graph is built, so a contradictory
// command line fails at startup with one clear message instead of silently
// degrading mid-run. The library Config stays permissive (budget_aware
// without a budget degrades to inside_out, MaxLookahead below Lookahead
// clamps — both documented); the CLIs call this because a human who typed
// -order budget_aware without -mem-budget almost certainly made a mistake.
//
// bufferSlots is pbg-node's lock-role override that prices the budget_aware
// buffer directly; pbg-train passes 0. codec is the -codec flag value
// ("" means fp32).
func ValidateRunFlags(order, codec string, memBudget int64, bufferSlots, lookahead, maxLookahead int) error {
	if _, err := storage.ParseCodec(codec); err != nil {
		return fmt.Errorf("-codec: %w", err)
	}
	switch order {
	case "", partition.OrderInsideOut, partition.OrderSequential,
		partition.OrderRandom, partition.OrderChained, partition.OrderBudgetAware:
	default:
		return fmt.Errorf("unknown -order %q (want inside_out, sequential, random, chained, or budget_aware)", order)
	}
	if memBudget < 0 {
		return fmt.Errorf("-mem-budget must not be negative, got %d", memBudget)
	}
	if lookahead < 0 {
		return fmt.Errorf("-lookahead must not be negative, got %d", lookahead)
	}
	if maxLookahead < 0 {
		return fmt.Errorf("-max-lookahead must not be negative, got %d", maxLookahead)
	}
	if bufferSlots < 0 {
		return fmt.Errorf("-buffer-slots must not be negative, got %d", bufferSlots)
	}
	if order == partition.OrderBudgetAware && memBudget == 0 && bufferSlots == 0 {
		return fmt.Errorf("-order budget_aware needs -mem-budget (it optimises the bucket sequence against that budget); without one it would silently degrade to inside_out")
	}
	if maxLookahead > 0 && lookahead > maxLookahead {
		return fmt.Errorf("-max-lookahead %d is below -lookahead %d; raise -max-lookahead or lower -lookahead", maxLookahead, lookahead)
	}
	return nil
}
