package train

import (
	"time"

	"pbg/internal/graph"
	"pbg/internal/partition"
	"pbg/internal/storage"
)

// Budget-aware bucket ordering: translating Config.MemBudgetBytes into the
// resident-partition-slot capacity partition.OptimizeOrder needs. The
// memory-budgeted shard cache (PR 3) enforces the budget reactively —
// admission, hint shedding, LRU eviction — but which shards it is forced to
// evict is decided by the bucket order; ordering against the buffer removes
// most of those forced evictions up front. Pricing goes through
// storage.ProjectedShardBytesCodec, the same single formula budget
// admission and the lookahead controller use, so the three views of the
// budget cannot drift apart — and a quantized codec buys more slots at the
// same budget in all three at once.

// BufferSlotsFor converts a memory budget into resident partition slots:
// how many whole partitions (one shard per partitioned entity type each)
// fit in budget bytes after the always-resident unpartitioned shards and
// the controller's one-in-flight-shard allowance are set aside, priced
// under the run's shard codec. Returns 0 when no budget is set or the
// budget cannot hold even one slot — callers treat both as "nothing to
// optimise against". This is the single pricing the trainer, pbg-train's
// startup line, and pbg-node's lock role all use, so the order the lock
// server installs is optimized for exactly the buffer the trainers' caches
// will sustain.
func BufferSlotsFor(schema *graph.Schema, dim int, budget int64, codec storage.Codec) int {
	if budget <= 0 {
		return 0
	}
	var static, slotBytes, maxShard int64
	for ti, e := range schema.Entities {
		// Partition 0 is never smaller than later partitions, so pricing
		// slots at p=0 under-counts nothing.
		b := storage.ProjectedShardBytesCodec(schema, dim, ti, 0, codec)
		if b > maxShard {
			maxShard = b
		}
		if e.Partitioned() {
			slotBytes += b
		} else {
			static += b
		}
	}
	if slotBytes <= 0 {
		return 0
	}
	free := budget - static - maxShard
	if free < 0 {
		return 0
	}
	return int(free / slotBytes)
}

// bufferSlots is BufferSlotsFor over the trainer's own schema, budget and
// codec.
func (t *Trainer) bufferSlots() int {
	return BufferSlotsFor(t.g.Schema, t.cfg.Dim, t.cfg.MemBudgetBytes, t.codec)
}

// buildOrder constructs the trainer's bucket order and records the planning
// gauges (pbg_partition_plan_ns and, for budget_aware, the projected load
// counts an epoch's actual swap-ins can be compared against). For
// "budget_aware" it prices the partition buffer the budget affords via
// bufferSlots and plans against it with partition.PlanBudgetAware — the
// same planning OrderForBuffer runs, called directly so the plan's
// projected costs are in hand to record; with no budget (or one too tight
// to hold a single partition) that degrades to plain inside-out, matching
// the documented Config.BucketOrder contract.
func (t *Trainer) buildOrder() ([]partition.Bucket, error) {
	start := time.Now()
	defer func() { t.tm.planNs.Set(time.Since(start).Nanoseconds()) }()
	if t.cfg.BucketOrder == partition.OrderBudgetAware {
		slots := t.bufferSlots()
		plan := partition.PlanBudgetAware(t.nSrc, t.nDst, slots)
		t.tm.bufferSlots.Set(int64(slots))
		t.tm.projectedLoads.Set(int64(plan.Cost))
		t.tm.baseLoads.Set(int64(plan.BaseCost))
		return plan.Order, nil
	}
	return partition.OrderForBuffer(t.cfg.BucketOrder, t.nSrc, t.nDst, t.cfg.Seed, 0)
}

// BufferSlots reports how many resident partition slots the configured
// memory budget affords (0 = unbudgeted); it is the capacity the
// budget_aware order optimises against, exposed for tests and benchmarks.
// CLIs without a Trainer in hand use BufferSlotsFor directly.
func (t *Trainer) BufferSlots() int { return t.bufferSlots() }

// PlanOrderFor prices the partition buffer `budget` affords for this
// schema (via BufferSlotsFor) and plans the budget_aware bucket order
// against the schema's bucket grid, reporting which strategy won — the
// greedy search on small grids, or one of the closed-form BETA schedules
// (grouped/strided) past the size cutoff. It returns the plan plus the
// priced slot count so CLIs can echo the decision; the trainer's own
// buildOrder runs exactly this planning through partition.OrderForBuffer.
func PlanOrderFor(schema *graph.Schema, dim int, budget int64, codec storage.Codec) (partition.OrderPlan, int) {
	slots := BufferSlotsFor(schema, dim, budget, codec)
	nSrc, nDst := bucketDims(schema)
	return partition.PlanBudgetAware(nSrc, nDst, slots), slots
}
