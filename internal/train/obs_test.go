package train

import (
	"strings"
	"testing"

	"pbg/internal/obs"
	"pbg/internal/storage"
)

// TestTrainerRecordsMetrics trains a partitioned graph over a DiskStore with
// a shared hub and checks the trainer's metrics agree with the EpochStats it
// returned — the stats are a thin view over the same registry — and that
// the storage counters landed in the shared registry via SetObs plumbing.
func TestTrainerRecordsMetrics(t *testing.T) {
	hub := obs.NewHub()
	g := smallSocial(t, 4)
	store, err := storage.NewDiskStore(t.TempDir(), g.Schema, 16, 7, 1)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := New(g, store, Config{Dim: 16, Epochs: 2, Seed: 3, Obs: hub})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := tr.Train(nil)
	if err != nil {
		t.Fatal(err)
	}

	snap := hub.Reg.Snapshot()
	var edges, swaps int
	var lastAction string
	for _, s := range stats {
		edges += s.Edges
		swaps += s.PartitionIO
		lastAction = s.LookaheadAction
	}
	if got := snap.Counters["pbg_train_edges_total"]; got != int64(edges) {
		t.Errorf("edges counter = %d, want %d", got, edges)
	}
	if got := snap.Counters["pbg_train_swapins_total"]; got != int64(swaps) {
		t.Errorf("swapins counter = %d, want %d", got, swaps)
	}
	ioWait, compute := tr.IOTotals()
	if got := snap.Counters["pbg_train_iowait_ns_total"]; got != ioWait.Nanoseconds() {
		t.Errorf("iowait counter = %d, IOTotals %d", got, ioWait.Nanoseconds())
	}
	if got := snap.Counters["pbg_train_compute_ns_total"]; got != compute.Nanoseconds() || got <= 0 {
		t.Errorf("compute counter = %d, IOTotals %d (want positive and equal)", got, compute.Nanoseconds())
	}
	if snap.Counters["pbg_train_worker_score_ns_total"] <= 0 ||
		snap.Counters["pbg_train_worker_gather_ns_total"] <= 0 {
		t.Error("worker gather/score counters did not accumulate")
	}
	if got := snap.Gauges["pbg_train_lookahead"]; got != int64(tr.Lookahead()) {
		t.Errorf("lookahead gauge = %d, trainer reports %d", got, tr.Lookahead())
	}
	var decisions int64
	for _, a := range []string{"widen", "narrow", "hold"} {
		decisions += snap.Counters[`pbg_train_lookahead_decisions_total{action="`+a+`"}`]
	}
	if decisions != int64(len(stats)) {
		t.Errorf("decision counters sum to %d, want one per epoch (%d); last action %q",
			decisions, len(stats), lastAction)
	}
	h, ok := snap.Histograms["pbg_train_bucket_loss_per_edge"]
	if !ok || h.Count <= 0 {
		t.Error("bucket loss histogram empty")
	}
	// SetObs plumbing: the DiskStore recorded into the same registry.
	if snap.Counters["pbg_storage_loads_total"] != store.IOStats().Loads {
		t.Errorf("storage loads in shared registry = %d, store reports %d",
			snap.Counters["pbg_storage_loads_total"], store.IOStats().Loads)
	}
	if snap.Counters["pbg_storage_loads_total"] <= 0 {
		t.Error("storage loads did not land in the shared registry")
	}
	// Spans: each epoch recorded a span with bucket children on the train
	// track.
	var epochs, buckets int
	for _, ev := range hub.Trace.Events() {
		switch {
		case strings.HasPrefix(ev.Name, "epoch "):
			epochs++
		case strings.HasPrefix(ev.Name, "bucket "):
			buckets++
			if ev.Parent == 0 {
				t.Errorf("bucket span %q has no epoch parent", ev.Name)
			}
		}
	}
	if epochs != len(stats) || buckets == 0 {
		t.Errorf("trace holds %d epoch spans (want %d) and %d bucket spans (want > 0)",
			epochs, len(stats), buckets)
	}
}

// TestEpochSummaryFormat pins the shared per-epoch line both CLIs print.
func TestEpochSummaryFormat(t *testing.T) {
	s := EpochStats{Epoch: 3, Loss: 50, Edges: 1000, Duration: 2_000_000_000, PartitionIO: 24}
	got := s.Summary()
	want := "epoch 3: loss/edge 0.0500  edges 1000  2.00s  IO 24  iowait 0%"
	if got != want {
		t.Errorf("Summary() = %q, want %q", got, want)
	}
	s.Lookahead, s.LookaheadAction, s.ResidentHighWater = 2, "widen", 3<<20
	if got := s.Summary(); !strings.Contains(got, "lookahead 2 (widen)  resident 3.0MB") {
		t.Errorf("Summary() with controller fields = %q", got)
	}
	// Zero-edge epochs must not render NaN.
	if got := (EpochStats{}).Summary(); strings.Contains(got, "NaN") {
		t.Errorf("zero stats render NaN: %q", got)
	}
}
