package train

import (
	"fmt"
	"time"

	"pbg/internal/obs"
	"pbg/internal/partition"
)

// trainMetrics holds the trainer's registry handles, resolved once at
// construction so the epoch and worker paths never take the registry lock.
type trainMetrics struct {
	// edges/swapIns accumulate per-epoch totals; ioWait/compute are the
	// cumulative nanosecond counters EpochStats reports per-epoch deltas of.
	edges, swapIns  *obs.Counter
	ioWait, compute *obs.Counter
	// workerGather/workerScore split in-bucket worker time into embedding
	// gather/scatter vs chunk scoring; workers accumulate locally and add
	// once per bucket (see workerLoop), keeping the hot path atomic-free.
	workerGather, workerScore *obs.Counter
	// lookahead mirrors the adaptive controller's live depth; decisions
	// counts its per-epoch widen/narrow/hold choices.
	lookahead *obs.Gauge
	decisions map[string]*obs.Counter
	// bucketLoss observes each trained bucket's loss per edge.
	bucketLoss *obs.Histogram
	// Planning gauges: wall time spent building the bucket order, the
	// budget_aware plan's projected swap-ins vs the inside_out baseline, and
	// the resident partition slots the budget priced out. Compare
	// projectedLoads against the per-epoch swap-ins pbg_train_swapins_total
	// accumulates to see projected-vs-actual.
	planNs, projectedLoads, baseLoads, bufferSlots *obs.Gauge
}

func newTrainMetrics(reg *obs.Registry) trainMetrics {
	decisions := make(map[string]*obs.Counter, 3)
	for _, a := range []string{"widen", "narrow", "hold"} {
		decisions[a] = reg.Counter(fmt.Sprintf("pbg_train_lookahead_decisions_total{action=%q}", a))
	}
	return trainMetrics{
		edges:          reg.Counter("pbg_train_edges_total"),
		swapIns:        reg.Counter("pbg_train_swapins_total"),
		ioWait:         reg.Counter("pbg_train_iowait_ns_total"),
		compute:        reg.Counter("pbg_train_compute_ns_total"),
		workerGather:   reg.Counter("pbg_train_worker_gather_ns_total"),
		workerScore:    reg.Counter("pbg_train_worker_score_ns_total"),
		lookahead:      reg.Gauge("pbg_train_lookahead"),
		decisions:      decisions,
		bucketLoss:     reg.Histogram("pbg_train_bucket_loss_per_edge"),
		planNs:         reg.Gauge("pbg_partition_plan_ns"),
		projectedLoads: reg.Gauge("pbg_partition_projected_loads"),
		baseLoads:      reg.Gauge("pbg_partition_base_loads"),
		bufferSlots:    reg.Gauge("pbg_partition_buffer_slots"),
	}
}

// Obs returns the trainer's observability hub: Config.Obs when one was
// supplied, otherwise the private quiet hub the trainer records into anyway
// (so IOTotals and tests always have live counters to read).
func (t *Trainer) Obs() *obs.Hub { return t.obs }

// IOTotals reports the cumulative bucket-transition stall time and in-bucket
// training time across all epochs so far — the counters TrainEpoch reports
// per-epoch deltas of. The distributed Node uses the deltas to fill its own
// per-epoch stats.
func (t *Trainer) IOTotals() (ioWait, compute time.Duration) {
	return time.Duration(t.tm.ioWait.Value()), time.Duration(t.tm.compute.Value())
}

// startBucketSpan opens the span covering one bucket's training: a child of
// the current epoch span when the local epoch executor is driving, a root
// span when buckets arrive one lease at a time (the distributed node).
func (t *Trainer) startBucketSpan(b partition.Bucket) *obs.Span {
	name := fmt.Sprintf("bucket (%d,%d)", b.P1, b.P2)
	if t.epochSpan != nil {
		return t.epochSpan.Child(name)
	}
	return t.obs.Trace.Start("train", name)
}

// Summary renders the one-line per-epoch report both CLIs print, so local
// and distributed runs read identically:
//
//	epoch 3: loss/edge 0.0412  edges 120000  2.10s  IO 24  iowait 3%
//
// followed by "lookahead D (action)  resident X.XMB" when the adaptive
// controller ran this epoch.
func (s EpochStats) Summary() string {
	edges := s.Edges
	if edges < 1 {
		edges = 1
	}
	secs := s.Duration.Seconds()
	var ioShare float64
	if secs > 0 {
		ioShare = 100 * s.IOWait.Seconds() / secs
	}
	line := fmt.Sprintf("epoch %d: loss/edge %.4f  edges %d  %.2fs  IO %d  iowait %.0f%%",
		s.Epoch, s.Loss/float64(edges), s.Edges, secs, s.PartitionIO, ioShare)
	if s.LookaheadAction != "" {
		line += fmt.Sprintf("  lookahead %d (%s)  resident %.1fMB",
			s.Lookahead, s.LookaheadAction, float64(s.ResidentHighWater)/(1<<20))
	}
	return line
}
