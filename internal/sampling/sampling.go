// Package sampling implements PBG's negative sampling strategies (§3.1):
// a fraction α of negatives is drawn from the data-prevalence distribution
// (entities weighted by their training-set degree) and 1−α uniformly at
// random. Samplers are constrained to the entity type of the corrupted side
// (§3.1's multi-entity rule) and, under partitioned training, to the
// partition of the current bucket (§4.1's first functional change).
package sampling

import (
	"fmt"

	"pbg/internal/graph"
	"pbg/internal/rng"
)

// Sampler draws entity IDs (global, within one entity type).
type Sampler interface {
	Sample(r *rng.RNG) int32
}

// Uniform samples uniformly from [Lo, Hi).
type Uniform struct {
	Lo, Hi int32
}

// Sample returns a uniform entity ID in the range.
func (u Uniform) Sample(r *rng.RNG) int32 {
	return u.Lo + int32(r.Intn(int(u.Hi-u.Lo)))
}

// Prevalence samples entities proportionally to their training-set degree
// via a Walker alias table. Entities with zero degree in the slice are never
// produced unless all degrees are zero (then it degenerates to uniform).
type Prevalence struct {
	lo    int32
	alias *rng.Alias
}

// NewPrevalence builds a prevalence sampler over entities [lo, lo+len(w))
// with weights w (typically degree counts).
func NewPrevalence(lo int32, w []float64) *Prevalence {
	return &Prevalence{lo: lo, alias: rng.NewAlias(w)}
}

// Sample returns an entity ID drawn ∝ weight.
func (p *Prevalence) Sample(r *rng.RNG) int32 {
	return p.lo + int32(p.alias.Sample(r))
}

// Mixed implements the α-mixture of §3.1: with probability Alpha sample from
// Data (prevalence), otherwise from Unif. The paper's default is α = 0.5.
type Mixed struct {
	Alpha float32
	Data  Sampler
	Unif  Sampler
}

// Sample draws from the mixture.
func (m Mixed) Sample(r *rng.RNG) int32 {
	if r.Float32() < m.Alpha {
		return m.Data.Sample(r)
	}
	return m.Unif.Sample(r)
}

// Set provides, for every (entity type, partition) pair, the negative
// sampler the trainer uses when corrupting an edge endpoint of that type
// inside that partition. Unpartitioned types have a single partition 0
// spanning all entities.
type Set struct {
	// byTypePart[t][p] is the sampler for entity type index t, partition p.
	byTypePart [][]Sampler
	schema     *graph.Schema
}

// NewSet builds the sampler set. alpha is the data-prevalence fraction;
// degrees may be nil, in which case sampling is purely uniform regardless of
// alpha.
//
// PartSize is ceil-division, so a valid schema can leave trailing
// partitions empty (Count=6 over 4 partitions sizes them 2,2,2,0). An
// empty partition holds no entities to sample, and naively building its
// samplers panics — Uniform over an empty range in rng.Intn, or an alias
// table over an empty weight slice at construction. No edge can demand a
// negative from an empty partition (the partition has no endpoints to
// corrupt), but the samplers are built eagerly for every partition, so
// empty ones get a guard sampler drawing uniformly from the whole entity
// type instead.
func NewSet(schema *graph.Schema, degrees *graph.Degrees, alpha float32) *Set {
	s := &Set{byTypePart: make([][]Sampler, len(schema.Entities)), schema: schema}
	for t, e := range schema.Entities {
		parts := make([]Sampler, e.NumPartitions)
		for p := 0; p < e.NumPartitions; p++ {
			size := e.PartitionCount(p)
			if size <= 0 {
				parts[p] = Uniform{Lo: 0, Hi: int32(e.Count)}
				continue
			}
			lo := int32(p * e.PartSize())
			hi := lo + int32(size)
			uni := Uniform{Lo: lo, Hi: hi}
			if degrees == nil || alpha <= 0 {
				parts[p] = uni
				continue
			}
			w := degrees.ByType[t][lo:hi]
			prev := NewPrevalence(lo, w)
			if alpha >= 1 {
				parts[p] = prev
			} else {
				parts[p] = Mixed{Alpha: alpha, Data: prev, Unif: uni}
			}
		}
		s.byTypePart[t] = parts
	}
	return s
}

// ForTypePartition returns the sampler for entity type index t, partition p.
func (s *Set) ForTypePartition(t, p int) Sampler {
	if t < 0 || t >= len(s.byTypePart) {
		panic(fmt.Sprintf("sampling: entity type index %d out of range", t))
	}
	parts := s.byTypePart[t]
	if p < 0 || p >= len(parts) {
		panic(fmt.Sprintf("sampling: partition %d out of range for type %d", p, t))
	}
	return parts[p]
}

// ForRelationDest returns the sampler used to corrupt destinations of
// relation rel inside destination-partition p (0 for unpartitioned types).
func (s *Set) ForRelationDest(rel int32, p int) Sampler {
	t := s.schema.EntityTypeIndex(s.schema.Relations[rel].DestType)
	if !s.schema.Entities[t].Partitioned() {
		p = 0
	}
	return s.ForTypePartition(t, p)
}

// ForRelationSource returns the sampler used to corrupt sources of relation
// rel inside source-partition p.
func (s *Set) ForRelationSource(rel int32, p int) Sampler {
	t := s.schema.EntityTypeIndex(s.schema.Relations[rel].SourceType)
	if !s.schema.Entities[t].Partitioned() {
		p = 0
	}
	return s.ForTypePartition(t, p)
}

// SampleMany fills ids with n draws from smp.
func SampleMany(smp Sampler, r *rng.RNG, ids []int32) {
	for i := range ids {
		ids[i] = smp.Sample(r)
	}
}
