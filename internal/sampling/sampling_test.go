package sampling

import (
	"math"
	"testing"
	"testing/quick"

	"pbg/internal/graph"
	"pbg/internal/rng"
)

func testSchema(t *testing.T) *graph.Schema {
	t.Helper()
	return graph.MustSchema(
		[]graph.EntityType{
			{Name: "user", Count: 100, NumPartitions: 4},
			{Name: "item", Count: 10, NumPartitions: 1},
		},
		[]graph.RelationType{
			{Name: "buys", SourceType: "user", DestType: "item", Operator: "identity"},
			{Name: "follows", SourceType: "user", DestType: "user", Operator: "identity"},
		},
	)
}

func TestUniformStaysInRange(t *testing.T) {
	u := Uniform{Lo: 10, Hi: 20}
	r := rng.New(1)
	for i := 0; i < 10000; i++ {
		v := u.Sample(r)
		if v < 10 || v >= 20 {
			t.Fatalf("uniform sample %d out of [10,20)", v)
		}
	}
}

func TestPrevalenceFollowsWeights(t *testing.T) {
	p := NewPrevalence(5, []float64{0, 1, 3})
	r := rng.New(2)
	counts := map[int32]int{}
	for i := 0; i < 40000; i++ {
		counts[p.Sample(r)]++
	}
	if counts[5] != 0 {
		t.Fatalf("zero-weight entity sampled %d times", counts[5])
	}
	ratio := float64(counts[7]) / float64(counts[6])
	if math.Abs(ratio-3) > 0.3 {
		t.Fatalf("weight ratio = %v, want ~3", ratio)
	}
}

func TestMixedAlphaZeroIsUniform(t *testing.T) {
	// With alpha=0 the data sampler must never fire; use a prevalence
	// sampler that would panic the test if consulted.
	m := Mixed{Alpha: 0, Data: NewPrevalence(1000, []float64{1}), Unif: Uniform{Lo: 0, Hi: 10}}
	r := rng.New(3)
	for i := 0; i < 1000; i++ {
		if v := m.Sample(r); v >= 10 {
			t.Fatalf("alpha=0 mixed sampler produced data sample %d", v)
		}
	}
}

func TestMixedAlphaProportions(t *testing.T) {
	// Data sampler always yields 0; uniform always yields 1 (range [1,2)).
	m := Mixed{Alpha: 0.3, Data: NewPrevalence(0, []float64{1}), Unif: Uniform{Lo: 1, Hi: 2}}
	r := rng.New(4)
	const n = 100000
	zeros := 0
	for i := 0; i < n; i++ {
		if m.Sample(r) == 0 {
			zeros++
		}
	}
	frac := float64(zeros) / n
	if math.Abs(frac-0.3) > 0.01 {
		t.Fatalf("data fraction = %v, want 0.3", frac)
	}
}

func TestSetPartitionConstrained(t *testing.T) {
	schema := testSchema(t)
	set := NewSet(schema, nil, 0)
	r := rng.New(5)
	// user partitions are [0,25), [25,50), [50,75), [75,100).
	for p := 0; p < 4; p++ {
		smp := set.ForTypePartition(0, p)
		for i := 0; i < 1000; i++ {
			v := smp.Sample(r)
			if int(v) < p*25 || int(v) >= (p+1)*25 {
				t.Fatalf("partition %d sampler yielded %d", p, v)
			}
		}
	}
}

func TestSetUnpartitionedTypeIgnoresPartition(t *testing.T) {
	schema := testSchema(t)
	set := NewSet(schema, nil, 0)
	r := rng.New(6)
	// Relation 0 ("buys") has unpartitioned dest type "item": any bucket
	// partition must map to the whole range.
	smp := set.ForRelationDest(0, 3)
	seen := map[int32]bool{}
	for i := 0; i < 1000; i++ {
		v := smp.Sample(r)
		if v < 0 || v >= 10 {
			t.Fatalf("item sample %d out of range", v)
		}
		seen[v] = true
	}
	if len(seen) < 8 {
		t.Fatalf("unpartitioned sampler covered only %d/10 items", len(seen))
	}
}

func TestSetForRelationSource(t *testing.T) {
	schema := testSchema(t)
	set := NewSet(schema, nil, 0)
	r := rng.New(7)
	smp := set.ForRelationSource(1, 2) // "follows" src = user, partition 2
	for i := 0; i < 1000; i++ {
		v := smp.Sample(r)
		if v < 50 || v >= 75 {
			t.Fatalf("source sample %d outside partition 2", v)
		}
	}
}

func TestSetWithDegreesPrefersPopular(t *testing.T) {
	schema := testSchema(t)
	deg := &graph.Degrees{ByType: [][]float64{make([]float64, 100), make([]float64, 10)}}
	// Entity 3 of "item" is hugely popular.
	for i := range deg.ByType[1] {
		deg.ByType[1][i] = 1
	}
	deg.ByType[1][3] = 1000
	for i := range deg.ByType[0] {
		deg.ByType[0][i] = 1
	}
	set := NewSet(schema, deg, 1.0) // pure prevalence
	r := rng.New(8)
	smp := set.ForRelationDest(0, 0)
	hits := 0
	for i := 0; i < 10000; i++ {
		if smp.Sample(r) == 3 {
			hits++
		}
	}
	if hits < 9000 {
		t.Fatalf("popular entity sampled only %d/10000", hits)
	}
}

func TestSetAlphaHalfMixes(t *testing.T) {
	schema := testSchema(t)
	deg := &graph.Degrees{ByType: [][]float64{make([]float64, 100), make([]float64, 10)}}
	// Only item 0 appears in data.
	deg.ByType[1][0] = 5
	for i := range deg.ByType[0] {
		deg.ByType[0][i] = 1
	}
	set := NewSet(schema, deg, 0.5)
	r := rng.New(9)
	smp := set.ForRelationDest(0, 0)
	zero := 0
	const n = 50000
	for i := 0; i < n; i++ {
		if smp.Sample(r) == 0 {
			zero++
		}
	}
	// P(0) = 0.5·1 + 0.5·0.1 = 0.55.
	frac := float64(zero) / n
	if math.Abs(frac-0.55) > 0.02 {
		t.Fatalf("item-0 fraction = %v, want ~0.55", frac)
	}
}

func TestSampleMany(t *testing.T) {
	u := Uniform{Lo: 0, Hi: 5}
	ids := make([]int32, 64)
	SampleMany(u, rng.New(10), ids)
	for _, v := range ids {
		if v < 0 || v >= 5 {
			t.Fatalf("sample %d out of range", v)
		}
	}
}

func TestSetOutOfRangePanics(t *testing.T) {
	schema := testSchema(t)
	set := NewSet(schema, nil, 0)
	for _, fn := range []func(){
		func() { set.ForTypePartition(99, 0) },
		func() { set.ForTypePartition(0, 99) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}

// Property: NewSet never panics and every sampler draws in-range entities,
// for arbitrary (Count, NumPartitions) combinations — including schemas
// whose ceil-division partition sizes leave trailing partitions empty
// (Count=6 over 4 partitions sizes them 2,2,2,0), which used to panic at
// construction (empty alias table) or first sample (rng.Intn(0)).
func TestNewSetEmptyPartitionProperty(t *testing.T) {
	f := func(countRaw uint16, partsRaw, alphaRaw uint8, seed uint64) bool {
		count := int(countRaw)%50 + 1
		parts := int(partsRaw)%12 + 1
		if parts > count {
			parts = count
		}
		alpha := float32(alphaRaw%11) / 10
		schema := graph.MustSchema(
			[]graph.EntityType{{Name: "n", Count: count, NumPartitions: parts}},
			[]graph.RelationType{{Name: "r", SourceType: "n", DestType: "n", Operator: "identity"}},
		)
		degrees := &graph.Degrees{ByType: [][]float64{make([]float64, count)}}
		r := rng.New(seed)
		for i := range degrees.ByType[0] {
			degrees.ByType[0][i] = float64(r.Intn(5))
		}
		for _, deg := range []*graph.Degrees{nil, degrees} {
			set := NewSet(schema, deg, alpha)
			ent := schema.Entities[0]
			for p := 0; p < parts; p++ {
				smp := set.ForTypePartition(0, p)
				for i := 0; i < 20; i++ {
					id := smp.Sample(r)
					if id < 0 || int(id) >= count {
						return false
					}
					// Non-empty partitions must sample within themselves
					// (§4.1's partition-constrained negatives); empty ones
					// fall back to the whole type.
					if ent.PartitionCount(p) > 0 && ent.PartitionOf(id) != p {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// The ISSUE's concrete reproducer: Count=6 over 4 partitions (sizes
// 2,2,2,0) with degree-weighted sampling.
func TestNewSetEmptyTrailingPartition(t *testing.T) {
	schema := graph.MustSchema(
		[]graph.EntityType{{Name: "n", Count: 6, NumPartitions: 4}},
		[]graph.RelationType{{Name: "r", SourceType: "n", DestType: "n", Operator: "identity"}},
	)
	degrees := &graph.Degrees{ByType: [][]float64{{1, 2, 3, 1, 2, 3}}}
	set := NewSet(schema, degrees, 0.5)
	r := rng.New(3)
	for i := 0; i < 100; i++ {
		if id := set.ForTypePartition(0, 3).Sample(r); id < 0 || id >= 6 {
			t.Fatalf("guard sampler returned %d", id)
		}
	}
}
