// Command pbg-bench regenerates the paper's tables and figures on the
// synthetic dataset stand-ins and prints them in the same row structure the
// paper reports (see DESIGN.md §3 for the experiment index and
// EXPERIMENTS.md for recorded paper-vs-measured values).
//
// Usage:
//
//	pbg-bench -exp all -scale small
//	pbg-bench -exp table3 -scale medium
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"pbg/internal/bench"
	"pbg/internal/eval"
)

func main() {
	expFlag := flag.String("exp", "all", "experiment id: all, table1, table2, table3, table4, figure1, figure4, figure5, figure6, figure7, ordering, ablations, serve, codec")
	scaleFlag := flag.String("scale", "small", "small or medium")
	shortFlag := flag.Bool("short", false, "CI-sized runs where an experiment supports it (currently: serve, codec)")
	flag.Parse()

	var scale bench.Scale
	switch *scaleFlag {
	case "small":
		scale = bench.SmallScale
	case "medium":
		scale = bench.MediumScale
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q\n", *scaleFlag)
		os.Exit(2)
	}

	want := map[string]bool{}
	for _, e := range strings.Split(*expFlag, ",") {
		want[strings.TrimSpace(e)] = true
	}
	all := want["all"]
	ran := 0

	report := func(rep *bench.Report, cols []string, err error) {
		if err != nil {
			fmt.Fprintf(os.Stderr, "error: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(rep.Format(cols))
		ran++
	}
	curves := func(cs []*eval.Curve, err error, title string) {
		if err != nil {
			fmt.Fprintf(os.Stderr, "error: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("== %s ==\n", title)
		for _, c := range cs {
			fmt.Println(c.String())
		}
		ran++
	}

	if all || want["table1"] {
		rep, err := bench.Table1LiveJournal(scale)
		report(rep, []string{"MRR", "MR", "Hits@10", "mem_MB"}, err)
		rep, err = bench.Table1YouTube(scale)
		report(rep, []string{"Micro-F1", "Macro-F1"}, err)
	}
	if all || want["table2"] {
		rep, err := bench.Table2FB15k(scale)
		report(rep, []string{"MRR-raw", "MRR-filt", "Hits@10"}, err)
	}
	if all || want["table3"] {
		rep, err := bench.Table3Partitions(scale)
		report(rep, []string{"MRR", "Hits@10", "time_s", "mem_MB"}, err)
		rep, err = bench.Table3Distributed(scale)
		report(rep, []string{"MRR", "Hits@10", "time_s", "mem_MB"}, err)
	}
	if all || want["table4"] {
		rep, err := bench.Table4Partitions(scale)
		report(rep, []string{"MRR", "Hits@10", "time_s", "mem_MB"}, err)
		rep, err = bench.Table4Distributed(scale)
		report(rep, []string{"MRR", "Hits@10", "time_s", "mem_MB"}, err)
	}
	if all || want["figure1"] {
		rep, err := bench.Figure1Ordering(scale)
		report(rep, []string{"MRR", "Hits@10", "swaps", "IO/epoch", "invariant"}, err)
	}
	if all || want["figure4"] {
		rep, err := bench.Figure4Negatives(scale)
		report(rep, []string{"Bn", "edges/s"}, err)
	}
	if all || want["figure5"] {
		cs, err := bench.Figure5LearningCurves(scale)
		curves(cs, err, "figure5: LiveJournal learning curves (paper Figure 5)")
	}
	if all || want["figure6"] {
		cs, err := bench.Figure6FreebaseCurves(scale)
		curves(cs, err, "figure6: Freebase distributed learning curves (paper Figure 6)")
	}
	if all || want["figure7"] {
		cs, err := bench.Figure7TwitterCurves(scale)
		curves(cs, err, "figure7: Twitter distributed learning curves (paper Figure 7)")
	}
	if all || want["ordering"] {
		rep, err := bench.OrderingSweep(scale)
		report(rep, []string{"proj_swaps", "forced_evicts", "iowait%", "edges/s", "order_ms"}, err)
	}
	if all || want["ablations"] {
		rep, err := bench.AblationAlpha(scale)
		report(rep, []string{"MRR-uniform", "MRR-prevalence"}, err)
		rep, err = bench.AblationComplExPartitioning(scale)
		report(rep, []string{"MRR-mean", "MRR-std"}, err)
		rep, err = bench.AblationStratum(scale)
		report(rep, []string{"MRR-after-1-epoch", "IO/epoch"}, err)
	}
	if all || want["serve"] {
		rep, err := bench.ServeSweep(scale, *shortFlag)
		report(rep, []string{"QPS", "p99_ms", "recall@10", "rows/query"}, err)
	}
	if all || want["codec"] {
		rep, err := bench.CodecSweep(scale, *shortFlag)
		report(rep, []string{"bytes/row", "xfp32", "shard_MB", "write_MB/s", "read_MB/s", "lookahead"}, err)
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "no experiment matched %q\n", *expFlag)
		os.Exit(2)
	}
}
