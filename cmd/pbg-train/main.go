// Command pbg-train trains embeddings for a graph and writes a checkpoint.
//
// The input is a binary edge file written by cmd/pbg-partition (or the
// storage package); for quick experimentation the -synthetic flag generates
// one of the built-in synthetic graphs instead.
//
// Examples:
//
//	pbg-train -synthetic social -nodes 10000 -epochs 10 -dim 64 -out /tmp/ckpt
//	pbg-train -edges edges.bin -entities 50000 -partitions 8 -dim 100 -out /tmp/ckpt
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"pbg"
	"pbg/internal/graph"
	"pbg/internal/obs"
	"pbg/internal/partition"
	"pbg/internal/storage"
	"pbg/internal/train"
)

func main() {
	var (
		synthetic  = flag.String("synthetic", "", "generate a synthetic graph: social, knowledge, bipartite")
		nodes      = flag.Int("nodes", 10000, "nodes/entities for synthetic graphs")
		relations  = flag.Int("relations", 20, "relations for synthetic knowledge graphs")
		avgDeg     = flag.Int("degree", 10, "average out-degree for synthetic graphs")
		edgesPath  = flag.String("edges", "", "binary edge file (see pbg-partition)")
		entities   = flag.Int("entities", 0, "entity count when loading -edges")
		partitions = flag.Int("partitions", 1, "partitions P for the (single) entity type")
		dim        = flag.Int("dim", 64, "embedding dimension")
		epochs     = flag.Int("epochs", 10, "training epochs")
		workers    = flag.Int("workers", 4, "HOGWILD worker goroutines")
		comparator = flag.String("comparator", "dot", "dot, cos, l2, squared_l2")
		lossName   = flag.String("loss", "ranking", "ranking, logistic, softmax")
		operator   = flag.String("operator", "", "override relation operator: identity, translation, diagonal, linear, complex_diagonal")
		lr         = flag.Float64("lr", 0.1, "Adagrad learning rate")
		seed       = flag.Uint64("seed", 1, "random seed")
		out        = flag.String("out", "", "checkpoint directory (also used for partition swapping when P > 1)")
		memBudget  = flag.String("mem-budget", "", "resident shard memory budget, e.g. 256MB or 1.5GiB (default unbounded)")
		lookahead  = flag.Int("lookahead", 0, "initial pipelined-prefetch depth (0 = default 1)")
		maxLook    = flag.Int("max-lookahead", 0, "adaptive lookahead cap (0 = default; set equal to -lookahead to pin)")
		order      = flag.String("order", "", "bucket order: inside_out (default), sequential, random, chained, budget_aware (optimises against -mem-budget)")
		codecName  = flag.String("codec", "", "shard codec: fp32 (default), fp16, int8 — quantized checkpoints shrink shard bytes 2-4x and widen every -mem-budget window")
		obsAddr    = flag.String("obs-addr", "", "serve /metrics, /trace and /debug/pprof on this address (e.g. 127.0.0.1:9090; empty = off)")
	)
	flag.Parse()

	budget, err := storage.ParseByteSize(*memBudget)
	if err != nil {
		log.Fatal(err)
	}
	if err := train.ValidateRunFlags(*order, *codecName, budget, 0, *lookahead, *maxLook); err != nil {
		log.Fatal(err)
	}
	codec, err := storage.ParseCodec(*codecName)
	if err != nil {
		log.Fatal(err)
	}

	g, err := buildGraph(*synthetic, *edgesPath, *nodes, *relations, *avgDeg, *entities, *partitions)
	if err != nil {
		log.Fatal(err)
	}
	if *operator != "" {
		for i := range g.Schema.Relations {
			g.Schema.Relations[i].Operator = *operator
		}
	}
	cfg := pbg.TrainConfig{
		Dim: *dim, Epochs: *epochs, Workers: *workers,
		Comparator: *comparator, Loss: *lossName,
		LR: float32(*lr), Seed: *seed,
		Lookahead: *lookahead, MaxLookahead: *maxLook, MemBudgetBytes: budget,
		BucketOrder: *order, Codec: *codecName,
	}
	if *obsAddr != "" {
		hub := obs.NewHub()
		cfg.Obs = hub
		srv, err := hub.Serve(*obsAddr)
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Close()
		fmt.Printf("observability on http://%s (/metrics, /trace, /debug/pprof/)\n", srv.Addr())
	}
	if *order == partition.OrderBudgetAware {
		plan, slots := train.PlanOrderFor(g.Schema, *dim, budget, codec)
		switch {
		case slots <= 0:
			fmt.Println("budget_aware: no usable -mem-budget; order degrades to inside_out")
		case plan.Strategy != partition.StrategyInsideOut:
			fmt.Printf("budget_aware order: %s strategy over %d resident partition slots from -mem-budget (%d projected loads vs %d inside_out)\n",
				plan.Strategy, slots, plan.Cost, plan.BaseCost)
		case plan.Cost == 0:
			// An unbounded plan: zero cost means the buffer holds the grid.
			fmt.Printf("budget_aware: %d resident partition slots hold every partition; inside_out is already optimal\n", slots)
		default:
			fmt.Printf("budget_aware: keeping inside_out (no candidate beat its %d projected loads over %d resident partition slots)\n",
				plan.BaseCost, slots)
		}
	}
	onEpoch := func(st train.EpochStats) { fmt.Println(st.Summary()) }
	var m *pbg.Model
	if *partitions > 1 && *out != "" {
		m, err = pbg.TrainOnDiskWithCallback(g, *out, cfg, onEpoch)
		if err == nil {
			fmt.Printf("trained with partition swapping under %s\n", *out)
		}
	} else {
		m, err = pbg.TrainWithCallback(g, cfg, onEpoch)
	}
	if err != nil {
		log.Fatal(err)
	}
	if *out != "" {
		if err := m.Checkpoint(*out); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("checkpoint written to %s\n", *out)
	}
}

func buildGraph(synthetic, edgesPath string, nodes, relations, avgDeg, entities, partitions int) (*pbg.Graph, error) {
	switch {
	case synthetic == "social":
		return pbg.SocialGraph(pbg.SocialGraphConfig{
			Nodes: nodes, AvgOutDegree: avgDeg, NumPartitions: partitions, Seed: 1,
		})
	case synthetic == "knowledge":
		return pbg.KnowledgeGraph(pbg.KnowledgeGraphConfig{
			Entities: nodes, Relations: relations, Edges: nodes * avgDeg * 2,
			NumPartitions: partitions, Seed: 1,
		})
	case synthetic == "bipartite":
		return pbg.BipartiteGraph(pbg.BipartiteGraphConfig{
			Users: nodes, Items: nodes / 100, Edges: nodes * avgDeg,
			UserPartitions: partitions, Seed: 1,
		})
	case synthetic != "":
		return nil, fmt.Errorf("unknown synthetic graph %q", synthetic)
	case edgesPath != "":
		if entities <= 0 {
			return nil, fmt.Errorf("-entities required with -edges")
		}
		el, err := storage.ReadEdges(edgesPath)
		if err != nil {
			return nil, err
		}
		return pbg.NewGraph(
			[]graph.EntityType{{Name: "node", Count: entities, NumPartitions: partitions}},
			[]graph.RelationType{{Name: "edge", SourceType: "node", DestType: "node", Operator: "identity"}},
			el,
		)
	default:
		flag.Usage()
		os.Exit(2)
		return nil, nil
	}
}
