// Command pbg-eval runs link-prediction evaluation for a trained model on a
// held-out edge split. Because checkpoints store only parameters, the graph
// is regenerated (synthetic graphs are deterministic under their seed) or
// reloaded the same way pbg-train built it.
//
// Example:
//
//	pbg-eval -synthetic social -nodes 10000 -dim 64 -ckpt /tmp/ckpt -k 1000
package main

import (
	"flag"
	"fmt"
	"log"

	"pbg"
	"pbg/internal/eval"
	"pbg/internal/graph"
	"pbg/internal/storage"
	"pbg/internal/train"
)

func main() {
	var (
		synthetic = flag.String("synthetic", "social", "social, knowledge, bipartite")
		nodes     = flag.Int("nodes", 10000, "nodes/entities")
		relations = flag.Int("relations", 20, "relations for knowledge graphs")
		avgDeg    = flag.Int("degree", 10, "average degree")
		dim       = flag.Int("dim", 64, "embedding dimension")
		ckpt      = flag.String("ckpt", "", "checkpoint directory written by pbg-train")
		k         = flag.Int("k", 1000, "candidates per test edge (0 = all)")
		prevalent = flag.Bool("prevalence", false, "sample candidates by training prevalence (§5.4.2)")
		filtered  = flag.Bool("filtered", false, "filtered metrics (§5.4.1)")
		testFrac  = flag.Float64("test", 0.05, "test split fraction")
		maxEdges  = flag.Int("max", 2000, "max test edges to rank")
		seed      = flag.Uint64("seed", 1, "split seed")
	)
	flag.Parse()
	if *ckpt == "" {
		log.Fatal("-ckpt is required")
	}

	var g *pbg.Graph
	var err error
	switch *synthetic {
	case "social":
		g, err = pbg.SocialGraph(pbg.SocialGraphConfig{Nodes: *nodes, AvgOutDegree: *avgDeg, Seed: 1})
	case "knowledge":
		g, err = pbg.KnowledgeGraph(pbg.KnowledgeGraphConfig{
			Entities: *nodes, Relations: *relations, Edges: *nodes * *avgDeg * 2, Seed: 1,
		})
	default:
		log.Fatalf("unknown synthetic graph %q", *synthetic)
	}
	if err != nil {
		log.Fatal(err)
	}
	trainG, _, testG := g.Split(0, *testFrac, *seed)

	// Load checkpointed shards through a DiskStore and rank with a fresh
	// scorer matching the training defaults.
	store, err := storage.NewDiskStore(*ckpt, g.Schema, *dim, 0, 1)
	if err != nil {
		log.Fatal(err)
	}
	view := train.NewStoreView(store, g.Schema)
	defer view.Close()
	deg := graph.ComputeDegrees(trainG)

	// Relation parameters from the checkpoint.
	rs, err := storage.ReadRelations(*ckpt + "/relations.pbg")
	if err != nil {
		log.Fatal(err)
	}
	src, err := newCheckpointScorers(g, *dim, rs)
	if err != nil {
		log.Fatal(err)
	}

	rk := eval.NewRanker(g.Schema, view, src, *dim, deg)
	cfg := eval.Config{K: *k, MaxEdges: *maxEdges, Seed: 1}
	switch {
	case *k == 0:
		cfg.Mode = eval.CandidatesAll
	case *prevalent:
		cfg.Mode = eval.CandidatesPrevalence
	default:
		cfg.Mode = eval.CandidatesUniform
	}
	if *filtered {
		cfg.Filtered = true
		cfg.Known = graph.NewEdgeSet(trainG.Edges, testG.Edges)
	}
	m, err := rk.Evaluate(testG.Edges, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(m)
}

// newCheckpointScorers rebuilds per-relation scorers and loads the stored
// relation parameters into them (eval.ScorerSource).
func newCheckpointScorers(g *pbg.Graph, dim int, rs *storage.RelationState) (eval.ScorerSource, error) {
	// Reuse the training construction: one scorer per relation.
	store := storage.NewMemStore(g.Schema, dim, 0, 1)
	tr, err := train.New(g, store, train.Config{Dim: dim})
	if err != nil {
		return nil, err
	}
	for r := range g.Schema.Relations {
		if r < len(rs.Params) {
			tr.SetRelParams(r, rs.Params[r])
		}
	}
	return tr, nil
}
