// Command pbg-partition pre-partitions an edge list: it assigns entities to
// P partitions, sorts edges into the P×P buckets of §4.1, and writes one
// binary bucket file per non-empty bucket plus a summary. Trainer nodes then
// stream the bucket they hold the lock for (Figure 2's shared filesystem).
//
// Input format: text, one edge per line: "src dst" or "src rel dst".
//
// Example:
//
//	pbg-partition -in edges.txt -entities 100000 -p 16 -out /data/buckets
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"pbg/internal/graph"
	"pbg/internal/partition"
	"pbg/internal/storage"
)

func main() {
	var (
		in       = flag.String("in", "", "text edge list: 'src dst' or 'src rel dst' per line")
		entities = flag.Int("entities", 0, "entity count (IDs must be < entities)")
		nRel     = flag.Int("relations", 1, "relation count")
		p        = flag.Int("p", 4, "number of partitions P")
		out      = flag.String("out", "", "output directory for bucket files")
	)
	flag.Parse()
	if *in == "" || *out == "" || *entities <= 0 {
		flag.Usage()
		os.Exit(2)
	}

	f, err := os.Open(*in)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	el := &graph.EdgeList{}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 || strings.HasPrefix(fields[0], "#") {
			continue
		}
		var src, rel, dst int64
		var perr error
		switch len(fields) {
		case 2:
			src, perr = strconv.ParseInt(fields[0], 10, 32)
			if perr == nil {
				dst, perr = strconv.ParseInt(fields[1], 10, 32)
			}
		case 3:
			src, perr = strconv.ParseInt(fields[0], 10, 32)
			if perr == nil {
				rel, perr = strconv.ParseInt(fields[1], 10, 32)
			}
			if perr == nil {
				dst, perr = strconv.ParseInt(fields[2], 10, 32)
			}
		default:
			log.Fatalf("line %d: want 2 or 3 fields, got %d", line, len(fields))
		}
		if perr != nil {
			log.Fatalf("line %d: %v", line, perr)
		}
		el.Append(int32(src), int32(rel), int32(dst))
	}
	if err := sc.Err(); err != nil {
		log.Fatal(err)
	}

	rels := make([]graph.RelationType, *nRel)
	for i := range rels {
		rels[i] = graph.RelationType{
			Name: fmt.Sprintf("rel_%d", i), SourceType: "node", DestType: "node", Operator: "identity",
		}
	}
	schema, err := graph.NewSchema(
		[]graph.EntityType{{Name: "node", Count: *entities, NumPartitions: *p}},
		rels,
	)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := graph.NewGraph(schema, el); err != nil {
		log.Fatal(err)
	}

	ranges := graph.SortByBucket(schema, el, *p, *p)
	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatal(err)
	}
	written := 0
	for b := 0; b < *p**p; b++ {
		rg := ranges[b]
		if rg.Empty() {
			continue
		}
		bucket := partition.Bucket{P1: b / *p, P2: b % *p}
		path := filepath.Join(*out, fmt.Sprintf("bucket_%d_%d.edges", bucket.P1, bucket.P2))
		if err := storage.WriteEdges(path, el.Slice(rg.Lo, rg.Hi)); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: %d edges\n", path, rg.Len())
		written++
	}
	order, _ := partition.Order(partition.OrderInsideOut, *p, *p, 0)
	fmt.Printf("wrote %d bucket files; inside-out order requires %d partition loads/epoch\n",
		written, partition.SwapCount(order))
}
