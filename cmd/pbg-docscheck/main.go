// Command pbg-docscheck is the CI documentation gate: it walks every
// markdown file in the repository, verifies that intra-repo links resolve
// to real files, and checks that ```go code fences which form complete Go
// source (directly, or once wrapped in a package clause) are gofmt-clean.
// Fences that are deliberate fragments — statements without a surrounding
// declaration, elided bodies — are skipped, not failed.
//
// Usage (from the module root):
//
//	go run ./cmd/pbg-docscheck       # check the working tree
//	go run ./cmd/pbg-docscheck dir   # check another tree
package main

import (
	"bytes"
	"fmt"
	"go/format"
	"io/fs"
	"net/url"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// linkRe matches inline markdown links [text](target). Images and
// reference-style links are out of scope for this repo's docs.
var linkRe = regexp.MustCompile(`\[[^\]]*\]\(([^)\s]+)\)`)

// fenceRe captures ```go fences non-greedily, tolerating trailing
// whitespace after the language tag.
var fenceRe = regexp.MustCompile("(?s)```go[ \t]*\n(.*?)```")

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	var mdFiles []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if name := d.Name(); name == ".git" || name == "testdata" {
				return filepath.SkipDir
			}
			return nil
		}
		switch d.Name() {
		case "PAPER.md", "PAPERS.md", "SNIPPETS.md":
			// Retrieved paper/related-work material, not repo documentation:
			// scrape artifacts (figure links, partial excerpts) are expected.
			return nil
		}
		if strings.EqualFold(filepath.Ext(path), ".md") {
			mdFiles = append(mdFiles, path)
		}
		return nil
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "pbg-docscheck: %v\n", err)
		os.Exit(1)
	}

	problems := 0
	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, format+"\n", args...)
		problems++
	}
	checkedLinks, checkedFences, skippedFences := 0, 0, 0
	for _, md := range mdFiles {
		data, err := os.ReadFile(md)
		if err != nil {
			fail("%s: %v", md, err)
			continue
		}
		for _, m := range linkRe.FindAllStringSubmatch(string(data), -1) {
			target := m[1]
			if !isIntraRepo(target) {
				continue
			}
			checkedLinks++
			// Strip an anchor; markdown links may be URL-escaped.
			p := target
			if i := strings.IndexByte(p, '#'); i >= 0 {
				p = p[:i]
			}
			if p == "" {
				continue // pure anchor into the same file
			}
			if unescaped, err := url.PathUnescape(p); err == nil {
				p = unescaped
			}
			resolved := filepath.Join(filepath.Dir(md), filepath.FromSlash(p))
			if _, err := os.Stat(resolved); err != nil {
				fail("%s: broken link %q (%s does not exist)", md, target, resolved)
			}
		}
		for i, m := range fenceRe.FindAllStringSubmatch(string(data), -1) {
			src := []byte(m[1])
			formatted, err := format.Source(src)
			if err != nil {
				// Not a complete file; a fence of top-level declarations
				// still parses once given a package clause.
				wrapped := append([]byte("package p\n\n"), src...)
				wFormatted, werr := format.Source(wrapped)
				if werr != nil {
					skippedFences++ // deliberate fragment (statements, elisions)
					continue
				}
				checkedFences++
				if !bytes.Equal(wFormatted, wrapped) {
					fail("%s: go fence #%d is not gofmt-clean", md, i+1)
				}
				continue
			}
			checkedFences++
			if !bytes.Equal(formatted, src) {
				fail("%s: go fence #%d is not gofmt-clean", md, i+1)
			}
		}
	}
	fmt.Printf("pbg-docscheck: %d markdown files, %d intra-repo links, %d go fences checked (%d fragment fences skipped)\n",
		len(mdFiles), checkedLinks, checkedFences, skippedFences)
	if problems > 0 {
		fmt.Fprintf(os.Stderr, "pbg-docscheck: %d problem(s)\n", problems)
		os.Exit(1)
	}
}

// isIntraRepo reports whether a link target points into the repository (a
// relative path) rather than to an external URL or a pure anchor.
func isIntraRepo(target string) bool {
	if strings.HasPrefix(target, "#") {
		return false
	}
	if u, err := url.Parse(target); err == nil && u.Scheme != "" {
		return false // http(s), mailto, etc.
	}
	return true
}
