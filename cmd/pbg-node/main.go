// Command pbg-node runs one component of PBG's distributed mode (§4.2,
// Figure 2) as a standalone process, so a real multi-host deployment can be
// assembled from the same pieces the in-process harness uses:
//
//	pbg-node -role lock -listen :7001 -partitions 16
//	pbg-node -role partition -listen :7002 -nodes 100000 -dim 100
//	pbg-node -role param -listen :7003
//	pbg-node -role trainer -rank 0 -lock host1:7001 \
//	    -partition-servers host1:7002,host2:7002 -param-servers host1:7003 \
//	    -nodes 100000 -degree 10 -p 16 -dim 100 -epochs 10
//
// Trainer nodes regenerate the deterministic synthetic graph locally (the
// stand-in for the paper's shared filesystem of edge buckets).
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/rpc"
	"time"

	"pbg/internal/datagen"
	"pbg/internal/dist"
	"pbg/internal/graph"
	"pbg/internal/obs"
	"pbg/internal/partition"
	"pbg/internal/storage"
	"pbg/internal/train"
)

func main() {
	var (
		role    = flag.String("role", "", "lock, partition, param, or trainer")
		listen  = flag.String("listen", "127.0.0.1:0", "listen address for server roles")
		nParts  = flag.Int("partitions", 4, "partition grid size P (lock role)")
		nodes   = flag.Int("nodes", 10000, "graph nodes (partition/trainer roles)")
		avgDeg  = flag.Int("degree", 10, "average out-degree of the synthetic graph")
		p       = flag.Int("p", 4, "entity partitions (trainer role)")
		dim     = flag.Int("dim", 64, "embedding dimension")
		epochs  = flag.Int("epochs", 10, "epochs (trainer role)")
		rank    = flag.Int("rank", 0, "trainer rank")
		workers = flag.Int("workers", 4, "HOGWILD workers")
		lock    = flag.String("lock", "", "lock server address (trainer)")
		pservs  = flag.String("partition-servers", "", "comma-separated partition server addresses (trainer)")
		qservs  = flag.String("param-servers", "", "comma-separated parameter server addresses (trainer)")
		seed    = flag.Uint64("seed", 1, "graph seed (must match across nodes)")
		budget  = flag.String("mem-budget", "", "trainer checkout-cache budget, e.g. 256MB (default unbounded; lock role: prices -order budget_aware)")
		maxLook = flag.Int("max-lookahead", 0, "adaptive lookahead cap for the trainer's executor (0 = default)")
		orderBy = flag.String("order", "", "lock role bucket order: inside_out (default), sequential, random, chained, budget_aware")
		slots   = flag.Int("buffer-slots", 0, "lock role: resident partition slots for -order budget_aware (0 = derive from -mem-budget/-nodes/-dim)")
		obsAddr = flag.String("obs-addr", "", "serve /metrics, /trace and /debug/pprof on this address (empty = off)")
		ttl     = flag.Duration("lease-ttl", 0, "lock role: bucket leases expire after this long without a heartbeat and are re-leased (0 = never; fail-stop)")
		ckptDir = flag.String("checkpoint-dir", "", "lock role: persist/resume epoch progress here; partition role: write shards through to this directory and restart from it")
		ckptEvr = flag.Duration("checkpoint-every", 5*time.Second, "lock role: epoch-progress manifest cadence (with -checkpoint-dir)")
	)
	flag.Parse()

	memBudget, err := storage.ParseByteSize(*budget)
	if err != nil {
		log.Fatal(err)
	}
	// Distributed training stays fp32 for now: the remote checkout cache has
	// no shard codec, so slot pricing below is fp32 too (quantizing the
	// partition-server store is a filed ROADMAP follow-up).
	if err := train.ValidateRunFlags(*orderBy, "", memBudget, *slots, 0, *maxLook); err != nil {
		log.Fatal(err)
	}
	var hub *obs.Hub
	if *obsAddr != "" {
		hub = obs.NewHub()
		srv, err := hub.Serve(*obsAddr)
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Close()
		fmt.Printf("observability on http://%s (/metrics, /trace, /debug/pprof/)\n", srv.Addr())
	}

	switch *role {
	case "lock":
		// The lock server owns the bucket order every trainer leases from, so
		// the budget-aware optimisation happens here. With -buffer-slots
		// unset, the slot count is derived from -mem-budget through the same
		// train.BufferSlotsFor pricing the trainers apply to their checkout
		// caches — over the synthetic graph's schema (-nodes rows across
		// -partitions partitions at -dim), so those flags must match the
		// trainer processes for the two projections to agree.
		if *nParts <= 0 {
			log.Fatalf("lock role needs a positive -partitions, got %d", *nParts)
		}
		bufSlots := *slots
		if bufSlots == 0 && memBudget > 0 && *nParts > 1 {
			schema, err := graph.NewSchema(
				[]graph.EntityType{{Name: "node", Count: *nodes, NumPartitions: *nParts}},
				[]graph.RelationType{{Name: "follows", SourceType: "node", DestType: "node", Operator: "identity"}},
			)
			if err != nil {
				log.Fatal(err)
			}
			bufSlots = train.BufferSlotsFor(schema, *dim, memBudget, storage.CodecFP32)
		}
		var order []partition.Bucket
		if *orderBy == partition.OrderBudgetAware {
			// Plan once: the plan carries both the order the lock server
			// installs and the strategy/cost fields the startup line prints
			// (replanning through OrderForBuffer would redo the greedy
			// search and both closed forms).
			plan := partition.PlanBudgetAware(*nParts, *nParts, bufSlots)
			order = plan.Order
			if bufSlots > 0 {
				fmt.Printf("budget_aware order over %d buffer slots: %s strategy, %d projected loads (inside_out: %d)\n",
					bufSlots, plan.Strategy, plan.Cost, plan.BaseCost)
			} else {
				fmt.Println("budget_aware: no usable -mem-budget or -buffer-slots; order degrades to inside_out")
			}
		} else {
			var err error
			order, err = partition.OrderForBuffer(*orderBy, *nParts, *nParts, *seed, bufSlots)
			if err != nil {
				log.Fatal(err)
			}
		}
		lockOpts := []dist.LockOption{dist.WithLeaseTTL(*ttl)}
		if hub != nil {
			lockOpts = append(lockOpts, dist.WithLockObs(hub))
		}
		if *ckptDir != "" {
			// Resume epoch progress from the manifest (relation parameters
			// live on the param servers; a multi-process deployment restores
			// them by restarting param servers before any trainer connects).
			if m, ok, err := dist.ReadManifest(*ckptDir); err != nil {
				log.Fatal(err)
			} else if ok {
				lockOpts = append(lockOpts, dist.WithRestoredEpoch(m.Epoch, m.Done))
				fmt.Printf("resuming from checkpoint: epoch %d, %d buckets done\n", m.Epoch, len(m.Done))
			}
		}
		ls := dist.NewLockServer(order, lockOpts...)
		if *ckptDir != "" {
			go func() {
				for range time.Tick(*ckptEvr) {
					var es dist.EpochStateReply
					if err := ls.EpochState(dist.EpochStateArgs{}, &es); err != nil {
						continue
					}
					if err := dist.WriteManifest(*ckptDir, &dist.Manifest{Epoch: es.Epoch, Done: es.Done}); err != nil {
						log.Printf("checkpoint manifest: %v", err)
					}
				}
			}()
		}
		serveForever(*listen, map[string]any{"LockServer": ls})
	case "partition":
		g := mustGraph(*nodes, *avgDeg, *p, *seed)
		partOpts := []dist.PartOption{}
		if *ckptDir != "" {
			partOpts = append(partOpts, dist.WithDurableDir(*ckptDir))
		}
		if hub != nil {
			partOpts = append(partOpts, dist.WithPartObs(hub))
		}
		serveForever(*listen, map[string]any{
			"PartitionServer": dist.NewPartitionServer(g.Schema, *dim, *seed+1, 1, partOpts...),
		})
	case "param":
		serveForever(*listen, map[string]any{"ParamServer": dist.NewParamServer()})
	case "trainer":
		g := mustGraph(*nodes, *avgDeg, *p, *seed)
		node, err := dist.NewNode(g, dist.NodeConfig{
			Rank:           *rank,
			LockAddr:       *lock,
			PartitionAddrs: dist.SplitAddrs(*pservs),
			ParamAddrs:     dist.SplitAddrs(*qservs),
			Train: train.Config{
				Dim: *dim, Workers: *workers, Seed: dist.RankSeed(*seed, *rank),
				MaxLookahead: *maxLook, MemBudgetBytes: memBudget,
				Obs: hub,
			},
		})
		if err != nil {
			log.Fatal(err)
		}
		defer node.Close()
		for e := 0; e < *epochs; e++ {
			// Rank 0 starts each epoch on the lock server.
			if *rank == 0 {
				conn, err := net.DialTimeout("tcp", *lock, 5*time.Second)
				if err != nil {
					log.Fatalf("dial lock server %s: %v", *lock, err)
				}
				c := rpc.NewClient(conn)
				var rep dist.StartEpochReply
				if err := c.Call("LockServer.StartEpoch", dist.StartEpochArgs{}, &rep); err != nil {
					log.Fatal(err)
				}
				_ = c.Close()
			}
			st, err := node.RunEpoch()
			if err != nil {
				log.Fatal(err)
			}
			fmt.Println(st.Summary(*rank, e))
		}
	default:
		flag.Usage()
		log.Fatalf("unknown role %q", *role)
	}
}

func mustGraph(nodes, avgDeg, p int, seed uint64) *graph.Graph {
	g, err := datagen.Social(datagen.SocialConfig{
		Nodes: nodes, AvgOutDegree: avgDeg, NumPartitions: p, Seed: seed,
	})
	if err != nil {
		log.Fatal(err)
	}
	return g
}

func serveForever(addr string, receivers map[string]any) {
	srv := rpc.NewServer()
	for name, rcvr := range receivers {
		if err := srv.RegisterName(name, rcvr); err != nil {
			log.Fatal(err)
		}
	}
	l, err := net.Listen("tcp", addr)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("listening on %s\n", l.Addr())
	for {
		conn, err := l.Accept()
		if err != nil {
			log.Fatal(err)
		}
		go srv.ServeConn(conn)
	}
}
