// Command pbg-serve exposes a trained checkpoint as an online embedding
// service: memory-mapped shard reads, batched exact top-K, and IVF
// approximate top-K over net/rpc. Because checkpoints store only
// parameters, the schema is regenerated the same way pbg-train built it
// (synthetic graphs are deterministic under their seed).
//
// Server:
//
//	pbg-serve -ckpt /tmp/ckpt -synthetic social -nodes 10000 -partitions 4 \
//	    -dim 64 -addr :7421 -build-index -obs-addr 127.0.0.1:9090
//
// Client (against a running server):
//
//	pbg-serve -connect host:7421 -rel 0 -src 12 -k 10
//	pbg-serve -connect host:7421 -rel 0 -src 12 -dst 99   # score + rank
//	pbg-serve -connect host:7421 -stats
//	pbg-serve -connect host:7421 -reload /tmp/ckpt2
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"

	"pbg"
	"pbg/internal/obs"
	"pbg/internal/serve"
	"pbg/internal/storage"
)

func main() {
	var (
		// Server mode.
		ckpt       = flag.String("ckpt", "", "checkpoint directory written by pbg-train (server mode)")
		synthetic  = flag.String("synthetic", "social", "schema source: social, knowledge")
		nodes      = flag.Int("nodes", 10000, "nodes/entities the checkpoint was trained on")
		relations  = flag.Int("relations", 20, "relations for knowledge graphs")
		avgDeg     = flag.Int("degree", 10, "average degree used at training time")
		partitions = flag.Int("partitions", 1, "partitions the checkpoint was trained with")
		dim        = flag.Int("dim", 64, "embedding dimension")
		comparator = flag.String("comparator", "dot", "dot, cos, l2, squared_l2 (must match training)")
		operator   = flag.String("operator", "", "override relation operator (must match training)")
		addr       = flag.String("addr", ":7421", "rpc listen address")
		obsAddr    = flag.String("obs-addr", "", "serve /metrics, /trace and /debug/pprof on this address (empty = off)")
		mode       = flag.String("mode", "auto", "shard read mode: auto, mmap, codec")
		quant      = flag.String("quant", "auto", "quantized scan: auto (scan int8/fp16 bytes when present, re-rank from fp32), off")
		rerank     = flag.Float64("rerank", 0, "quantized-scan oversampling factor (0 = default 3)")
		buildQuant = flag.String("build-quant", "", "write quantized sibling copies under this codec (fp16, int8) before serving")
		nprobe     = flag.Int("nprobe", 0, "default IVF probe width (0 = serve.DefaultNProbe)")
		buildIndex = flag.Bool("build-index", false, "build and persist the IVF index before serving")
		seed       = flag.Uint64("seed", 1, "k-means seed for -build-index")

		// Client mode.
		connect   = flag.String("connect", "", "connect to a running server instead of serving")
		rel       = flag.Int("rel", 0, "relation index for queries")
		src       = flag.Int("src", 0, "source entity id")
		dst       = flag.Int("dst", -1, "destination id: query score + rank instead of top-K")
		k         = flag.Int("k", 10, "neighbours to return")
		exact     = flag.Bool("exact", false, "exact scan instead of the IVF index")
		reloadDir = flag.String("reload", "", "ask the server to hot-swap to this checkpoint dir")
		stats     = flag.Bool("stats", false, "print server stats")
	)
	flag.Parse()

	if *connect != "" {
		runClient(*connect, *rel, int32(*src), int32(*dst), *k, *exact, *nprobe, *reloadDir, *stats)
		return
	}
	if *ckpt == "" {
		log.Fatal("either -ckpt (server) or -connect (client) is required")
	}

	g, err := buildGraph(*synthetic, *nodes, *relations, *avgDeg, *partitions)
	if err != nil {
		log.Fatal(err)
	}
	if *operator != "" {
		for i := range g.Schema.Relations {
			g.Schema.Relations[i].Operator = *operator
		}
	}
	m, err := serve.ParseMode(*mode)
	if err != nil {
		log.Fatal(err)
	}
	qm, err := serve.ParseQuant(*quant)
	if err != nil {
		log.Fatal(err)
	}
	cfg := serve.Config{
		Schema: g.Schema, Dim: *dim, Comparator: *comparator,
		Mode: m, Quant: qm, Rerank: *rerank, NProbe: *nprobe,
	}
	if *obsAddr != "" {
		hub := obs.NewHub()
		cfg.Obs = hub
		srv, err := hub.Serve(*obsAddr)
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Close()
		fmt.Printf("observability on http://%s (/metrics, /trace, /debug/pprof/)\n", srv.Addr())
	}

	s, err := serve.Open(*ckpt, cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer s.Close()
	if *buildQuant != "" {
		c, err := storage.ParseCodec(*buildQuant)
		if err != nil {
			log.Fatal(err)
		}
		if err := s.BuildQuant(c); err != nil {
			log.Fatal(err)
		}
	}
	if *buildIndex {
		if err := s.BuildIndex(serve.IVFConfig{Seed: *seed}); err != nil {
			log.Fatal(err)
		}
	}
	st, err := s.Stats()
	if err != nil {
		log.Fatal(err)
	}
	quantInfo := "off"
	if st.QuantShards > 0 {
		quantInfo = fmt.Sprintf("%s (%d shards, %.1f MB)", st.QuantCodec, st.QuantShards, float64(st.QuantBytes)/(1<<20))
	}
	fmt.Printf("serving %s: %d mapped shards (%.1f MB), quant scan: %s, index: %v (%d lists)\n",
		st.Dir, st.MappedShards, float64(st.MappedBytes)/(1<<20), quantInfo, st.HasIndex, st.IndexLists)

	front, err := serve.ListenAndServe(*addr, s)
	if err != nil {
		log.Fatal(err)
	}
	defer front.Close()
	fmt.Printf("rpc on %s\n", front.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("shutting down")
}

func runClient(addr string, rel int, src, dst int32, k int, exact bool, nprobe int, reloadDir string, stats bool) {
	c, err := serve.Dial(addr)
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()
	switch {
	case stats:
		st, err := c.Stats()
		if err != nil {
			log.Fatal(err)
		}
		quantInfo := "off"
		if st.QuantShards > 0 {
			quantInfo = fmt.Sprintf("%s (%d shards, %.1f MB)", st.QuantCodec, st.QuantShards, float64(st.QuantBytes)/(1<<20))
		}
		fmt.Printf("dir: %s\nmapped shards: %d (%.1f MB)\nquant scan: %s\nindex: %v (%d lists, %.1f MB)\nrequests served: %d\n",
			st.Dir, st.MappedShards, float64(st.MappedBytes)/(1<<20), quantInfo,
			st.HasIndex, st.IndexLists, float64(st.IndexBytes)/(1<<20), st.Requests)
	case reloadDir != "":
		if err := c.Reload(reloadDir); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("reloaded %s\n", reloadDir)
	case dst >= 0:
		score, err := c.Score([]serve.ScoreRequest{{Rel: rel, Src: src, Dst: dst}})
		if err != nil {
			log.Fatal(err)
		}
		rank, err := c.Rank(rel, src, dst)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("score(%d, %d -> %d) = %g  rank = %g\n", rel, src, dst, score[0], rank)
	default:
		res, err := c.TopK([]serve.TopKRequest{{Rel: rel, SrcID: src, K: k, Exact: exact, NProbe: nprobe}})
		if err != nil {
			log.Fatal(err)
		}
		r := res[0]
		fmt.Printf("top-%d for src %d (rel %d, scanned %d rows, probed %d lists):\n", k, src, rel, r.Scanned, r.Probed)
		for i := range r.IDs {
			fmt.Printf("  %3d. id %-8d score %g\n", i+1, r.IDs[i], r.Scores[i])
		}
	}
}

func buildGraph(synthetic string, nodes, relations, avgDeg, partitions int) (*pbg.Graph, error) {
	switch synthetic {
	case "social":
		return pbg.SocialGraph(pbg.SocialGraphConfig{
			Nodes: nodes, AvgOutDegree: avgDeg, NumPartitions: partitions, Seed: 1,
		})
	case "knowledge":
		return pbg.KnowledgeGraph(pbg.KnowledgeGraphConfig{
			Entities: nodes, Relations: relations, Edges: nodes * avgDeg * 2,
			NumPartitions: partitions, Seed: 1,
		})
	default:
		return nil, fmt.Errorf("unknown synthetic graph %q", synthetic)
	}
}
