// pbg-lint runs the repo's static-analysis suite (internal/lint): custom
// analyzers that machine-enforce the invariants the compiler can't see —
// zero-alloc //pbg:hotpath functions, no ordering decisions on map
// iteration, no blocking I/O under a mutex, obs handles resolved at
// construction, paired store Acquire/Release, and no silently dropped
// teardown errors.
//
// Usage:
//
//	pbg-lint [-list] [-only analyzer[,analyzer]] [packages]
//
// Packages default to ./... resolved against the enclosing module. Exit
// status is 0 with no findings, 1 with findings, 2 on a load/usage error.
// Findings are suppressed by an explanatory directive on the same line or
// the line above:
//
//	//lint:ignore <analyzer> <reason>
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"pbg/internal/lint"
)

func main() {
	listFlag := flag.Bool("list", false, "list analyzers and exit")
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	flag.Parse()

	if *listFlag {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-15s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := lint.Analyzers()
	if *only != "" {
		analyzers = analyzers[:0:0]
		for _, name := range strings.Split(*only, ",") {
			a := lint.ByName(strings.TrimSpace(name))
			if a == nil {
				fmt.Fprintf(os.Stderr, "pbg-lint: unknown analyzer %q (try -list)\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lint.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pbg-lint:", err)
		os.Exit(2)
	}
	diags, err := lint.Run(pkgs, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pbg-lint:", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "pbg-lint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
